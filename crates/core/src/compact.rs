//! **Algorithm 2**: the compact checkerboard update.
//!
//! The lattice is deinterleaved into four compact sub-lattices
//! `σ̂ab = σ[a::2, b::2]` — σ̂00 and σ̂11 hold all black spins, σ̂01 and σ̂10
//! all white — each stored as an `[m, n, t, t]` grid of tiles (128×128 on
//! real TPU; configurable here so tests run fast). Nearest-neighbor sums
//! become bidiagonal-kernel matmuls:
//!
//! ```text
//! nn(σ̂00) = σ̂01·K̂  + K̂ᵀ·σ̂10        nn(σ̂01) = σ̂00·K̂ᵀ + K̂ᵀ·σ̂11
//! nn(σ̂11) = K̂·σ̂01  + σ̂10·K̂ᵀ        nn(σ̂10) = K̂·σ̂00  + σ̂11·K̂
//! ```
//!
//! with tile-boundary terms compensated from neighboring tiles (rolled
//! grids) and, at the lattice boundary, from [`ColorHalos`] — either this
//! core's own wrapped edges (single-core torus) or a neighboring core's
//! edges delivered by `collective_permute` (distributed).
//!
//! Compared to the masked Algorithm 1 this does no wasted work: every
//! generated uniform, every matmul output and every flip lands on a spin
//! of the color being updated — the paper measures it ~3× faster.

use crate::lattice::{
    grid_boundary_col, grid_boundary_col_into, grid_boundary_row, grid_boundary_row_into,
    splice_halo_col, splice_halo_row, Color,
};
use crate::prob::Randomness;
use crate::sampler::Sweeper;
use rayon::prelude::*;
use tpu_ising_bf16::Scalar;
use tpu_ising_device::mesh::Dir;
use tpu_ising_obs as obs;
use tpu_ising_rng::RandomUniform;
use tpu_ising_tensor::{bidiag_kernel, Axis, BandKernel, KernelBackend, Mat, Plane, Side, Tensor4};

/// The four lattice-boundary halo vectors one color update needs.
///
/// For the **black** update: `north`/`south` are quarter-rows of σ̂10/σ̂01
/// beyond the top/bottom lattice edge; `first_col` is the σ̂01 quarter-column
/// beyond the **west** edge (consumed by nn(σ̂00)); `second_col` the σ̂10
/// quarter-column beyond the **east** edge (consumed by nn(σ̂11)).
///
/// For the **white** update: `north`/`south` are σ̂11/σ̂00 quarter-rows;
/// `first_col` is the σ̂00 quarter-column beyond the **east** edge (for
/// nn(σ̂01)); `second_col` the σ̂11 quarter-column beyond the **west** edge
/// (for nn(σ̂10)).
#[derive(Clone, Debug)]
pub struct ColorHalos<S> {
    /// Quarter-row above the lattice (length = quarter width `n·t`).
    pub north: Vec<S>,
    /// Quarter-row below the lattice (length `n·t`).
    pub south: Vec<S>,
    /// Quarter-column for the first compact sub-lattice (length `m·t`).
    pub first_col: Vec<S>,
    /// Quarter-column for the second compact sub-lattice (length `m·t`).
    pub second_col: Vec<S>,
}

impl<S> Default for ColorHalos<S> {
    fn default() -> Self {
        ColorHalos {
            north: Vec::new(),
            south: Vec::new(),
            first_col: Vec::new(),
            second_col: Vec::new(),
        }
    }
}

/// Preallocated per-color scratch: neighbor sums, the acceptance-uniform
/// buffer, the two boundary-compensation edges and the local halo vectors.
/// Sized once at construction so a band-backend half-sweep touches the
/// heap not at all.
struct Workspace<S> {
    nn0: Tensor4<S>,
    nn1: Tensor4<S>,
    probs: Tensor4<S>,
    edge_row: Tensor4<S>,
    edge_col: Tensor4<S>,
    halos: ColorHalos<S>,
}

impl<S: Scalar> Workspace<S> {
    fn new(shape: [usize; 4]) -> Self {
        let [m, n, t, _] = shape;
        Workspace {
            nn0: Tensor4::zeros(shape),
            nn1: Tensor4::zeros(shape),
            probs: Tensor4::zeros(shape),
            edge_row: Tensor4::zeros([m, n, 1, t]),
            edge_col: Tensor4::zeros([m, n, t, 1]),
            halos: ColorHalos {
                north: Vec::with_capacity(n * t),
                south: Vec::with_capacity(n * t),
                first_col: Vec::with_capacity(m * t),
                second_col: Vec::with_capacity(m * t),
            },
        }
    }
}

/// Algorithm 2 sampler over the four compact sub-lattices.
pub struct CompactIsing<S> {
    /// σ̂00, σ̂01, σ̂10, σ̂11 — each `[m, n, t, t]`.
    q00: Tensor4<S>,
    q01: Tensor4<S>,
    q10: Tensor4<S>,
    q11: Tensor4<S>,
    khat: Mat<S>,
    khat_t: Mat<S>,
    beta: f64,
    rng: Randomness,
    sweep_index: u64,
    /// Global lattice coordinates of this core's `(0, 0)` site — nonzero
    /// only in distributed runs; must be even so local parity = global.
    row0: usize,
    col0: usize,
    backend: KernelBackend,
    ws: Workspace<S>,
}

impl<S: Scalar + RandomUniform> CompactIsing<S> {
    /// Deinterleave a full local lattice into compact form.
    ///
    /// `tile` is the tile side of the quarter grids (128 on real TPU).
    /// The plane must be `(2·tile·m) × (2·tile·n)` for integers `m, n ≥ 1`.
    pub fn from_plane(plane: &Plane<S>, tile: usize, beta: f64, rng: Randomness) -> Self {
        Self::from_plane_at(plane, tile, beta, rng, 0, 0)
    }

    /// Like [`from_plane`](Self::from_plane) but for a core whose local
    /// window starts at global coordinates `(row0, col0)` (both even).
    pub fn from_plane_at(
        plane: &Plane<S>,
        tile: usize,
        beta: f64,
        rng: Randomness,
        row0: usize,
        col0: usize,
    ) -> Self {
        assert!(row0.is_multiple_of(2) && col0.is_multiple_of(2), "core offsets must be even");
        let [p00, p01, p10, p11] = plane.deinterleave();
        let q00 = p00.to_tiles(tile);
        let ws = Workspace::new(q00.shape());
        CompactIsing {
            q00,
            q01: p01.to_tiles(tile),
            q10: p10.to_tiles(tile),
            q11: p11.to_tiles(tile),
            khat: bidiag_kernel::<S>(tile),
            khat_t: bidiag_kernel::<S>(tile).transpose(),
            beta,
            rng,
            sweep_index: 0,
            row0,
            col0,
            backend: KernelBackend::default(),
            ws,
        }
    }

    /// Select the neighbor-sum compute path (builder style). The default
    /// is [`KernelBackend::Band`]; both backends are bit-identical.
    pub fn with_backend(mut self, backend: KernelBackend) -> Self {
        self.backend = backend;
        self
    }

    /// The active kernel backend.
    pub fn backend(&self) -> KernelBackend {
        self.backend
    }

    /// Switch the kernel backend in place.
    pub fn set_backend(&mut self, backend: KernelBackend) {
        self.backend = backend;
    }

    /// Negate the spin at linear site `site % (height·width)` of the
    /// interleaved local lattice — the chaos drill's silent-corruption
    /// injection. The flipped spin is a legal value, so only the
    /// integrity scrubber can tell. Site `(r, c)` lives in quadrant
    /// `σ̂(r%2)(c%2)` at quarter coordinates `(r/2, c/2)`.
    pub(crate) fn flip_spin(&mut self, site: usize) {
        let [m, n, t, _] = self.q00.shape();
        let (qh, qw) = (m * t, n * t);
        let (h, w) = (2 * qh, 2 * qw);
        let site = site % (h * w);
        let (r, c) = (site / w, site % w);
        let q = match (r % 2, c % 2) {
            (0, 0) => &mut self.q00,
            (0, 1) => &mut self.q01,
            (1, 0) => &mut self.q10,
            _ => &mut self.q11,
        };
        let (qr, qc) = (r / 2, c / 2);
        let v = q.get(qr / t, qc / t, qr % t, qc % t);
        q.set(qr / t, qc / t, qr % t, qc % t, S::from_f32(-v.to_f32()));
    }

    /// Reassemble the full local lattice.
    pub fn to_plane(&self) -> Plane<S> {
        Plane::interleave(&[
            Plane::from_tiles(&self.q00),
            Plane::from_tiles(&self.q01),
            Plane::from_tiles(&self.q10),
            Plane::from_tiles(&self.q11),
        ])
    }

    /// Inverse temperature.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Change β.
    pub fn set_beta(&mut self, beta: f64) {
        self.beta = beta;
    }

    /// Current sweep index (drives site-keyed randomness).
    pub fn sweep_index(&self) -> u64 {
        self.sweep_index
    }

    /// Overwrite the sweep counter (checkpoint restore).
    pub fn set_sweep_index(&mut self, sweep: u64) {
        self.sweep_index = sweep;
    }

    /// This core's global window offset `(row0, col0)`.
    pub fn window_offset(&self) -> (usize, usize) {
        (self.row0, self.col0)
    }

    /// Snapshot of the RNG state (checkpointing).
    pub fn rng_state(&self) -> crate::prob::RngState {
        self.rng.state()
    }

    /// Quarter-grid shape `[m, n, t, t]`.
    pub fn quarter_shape(&self) -> [usize; 4] {
        self.q00.shape()
    }

    /// This core's own wrapped-boundary halos — correct for a single-core
    /// (torus) run.
    pub fn local_halos(&self, color: Color) -> ColorHalos<S> {
        let mut out = ColorHalos::default();
        self.fill_local_halos(color, &mut out);
        out
    }

    /// [`local_halos`](Self::local_halos) into reused vectors: each is
    /// cleared and refilled, so the sweep loop's halo buffers stop
    /// allocating once their capacity is established.
    fn fill_local_halos(&self, color: Color, out: &mut ColorHalos<S>) {
        match color {
            Color::Black => {
                grid_boundary_row_into(&self.q10, Side::Last, &mut out.north);
                grid_boundary_row_into(&self.q01, Side::First, &mut out.south);
                grid_boundary_col_into(&self.q01, Side::Last, &mut out.first_col);
                grid_boundary_col_into(&self.q10, Side::First, &mut out.second_col);
            }
            Color::White => {
                grid_boundary_row_into(&self.q11, Side::Last, &mut out.north);
                grid_boundary_row_into(&self.q00, Side::First, &mut out.south);
                grid_boundary_col_into(&self.q00, Side::First, &mut out.first_col);
                grid_boundary_col_into(&self.q11, Side::Last, &mut out.second_col);
            }
        }
    }

    /// What this core must contribute to its neighbors for a color update,
    /// as `(payload, shift direction)` pairs in the fixed order
    /// `[north, south, first_col, second_col]` (the receiver's halo slots).
    ///
    /// Shifting a payload in direction `D` delivers it to the neighbor on
    /// the `D` side; e.g. the `north` halo every core *receives* is the
    /// boundary its north neighbor *sent* southward.
    pub fn halo_exchange_spec(&self, color: Color) -> [(Vec<S>, Dir); 4] {
        match color {
            Color::Black => [
                (grid_boundary_row(&self.q10, Side::Last), Dir::South),
                (grid_boundary_row(&self.q01, Side::First), Dir::North),
                (grid_boundary_col(&self.q01, Side::Last), Dir::East),
                (grid_boundary_col(&self.q10, Side::First), Dir::West),
            ],
            Color::White => [
                (grid_boundary_row(&self.q11, Side::Last), Dir::South),
                (grid_boundary_row(&self.q00, Side::First), Dir::North),
                (grid_boundary_col(&self.q00, Side::First), Dir::West),
                (grid_boundary_col(&self.q11, Side::Last), Dir::East),
            ],
        }
    }

    /// The nearest-neighbor sums for both compact sub-lattices of `color`
    /// (σ̂00 and σ̂11 for black; σ̂01 and σ̂10 for white), fully compensated
    /// with tile and lattice boundaries.
    pub fn neighbor_sums(&self, color: Color, halos: &ColorHalos<S>) -> (Tensor4<S>, Tensor4<S>) {
        // The bidiagonal-kernel matmuls are the MXU work of the step.
        let _span = obs::span!("neighbor_sums", obs::SpanKind::Mxu);
        match color {
            Color::Black => {
                // nn(σ̂00) = σ̂01·K̂ + K̂ᵀ·σ̂10
                let mut nn0 = self.q01.matmul_right(&self.khat);
                nn0.add_assign(&self.q10.matmul_left(&self.khat_t));
                // tile row 0 needs σ̂10 from the tile above
                let mut e = self.q10.roll_batch(1, 0).edge(Axis::Row, Side::Last);
                splice_halo_row(&mut e, true, &halos.north);
                nn0.add_edge_assign(Axis::Row, Side::First, &e);
                // tile col 0 needs σ̂01 from the tile to the left
                let mut e = self.q01.roll_batch(0, 1).edge(Axis::Col, Side::Last);
                splice_halo_col(&mut e, true, &halos.first_col);
                nn0.add_edge_assign(Axis::Col, Side::First, &e);

                // nn(σ̂11) = K̂·σ̂01 + σ̂10·K̂ᵀ
                let mut nn1 = self.q01.matmul_left(&self.khat);
                nn1.add_assign(&self.q10.matmul_right(&self.khat_t));
                // tile row t−1 needs σ̂01 from the tile below
                let mut e = self.q01.roll_batch(-1, 0).edge(Axis::Row, Side::First);
                splice_halo_row(&mut e, false, &halos.south);
                nn1.add_edge_assign(Axis::Row, Side::Last, &e);
                // tile col t−1 needs σ̂10 from the tile to the right
                let mut e = self.q10.roll_batch(0, -1).edge(Axis::Col, Side::First);
                splice_halo_col(&mut e, false, &halos.second_col);
                nn1.add_edge_assign(Axis::Col, Side::Last, &e);
                (nn0, nn1)
            }
            Color::White => {
                // nn(σ̂01) = σ̂00·K̂ᵀ + K̂ᵀ·σ̂11
                let mut nn0 = self.q00.matmul_right(&self.khat_t);
                nn0.add_assign(&self.q11.matmul_left(&self.khat_t));
                // tile row 0 needs σ̂11 from above
                let mut e = self.q11.roll_batch(1, 0).edge(Axis::Row, Side::Last);
                splice_halo_row(&mut e, true, &halos.north);
                nn0.add_edge_assign(Axis::Row, Side::First, &e);
                // tile col t−1 needs σ̂00 from the right
                let mut e = self.q00.roll_batch(0, -1).edge(Axis::Col, Side::First);
                splice_halo_col(&mut e, false, &halos.first_col);
                nn0.add_edge_assign(Axis::Col, Side::Last, &e);

                // nn(σ̂10) = K̂·σ̂00 + σ̂11·K̂
                let mut nn1 = self.q00.matmul_left(&self.khat);
                nn1.add_assign(&self.q11.matmul_right(&self.khat));
                // tile row t−1 needs σ̂00 from below
                let mut e = self.q00.roll_batch(-1, 0).edge(Axis::Row, Side::First);
                splice_halo_row(&mut e, false, &halos.south);
                nn1.add_edge_assign(Axis::Row, Side::Last, &e);
                // tile col 0 needs σ̂11 from the left
                let mut e = self.q11.roll_batch(0, 1).edge(Axis::Col, Side::Last);
                splice_halo_col(&mut e, true, &halos.second_col);
                nn1.add_edge_assign(Axis::Col, Side::First, &e);
                (nn0, nn1)
            }
        }
    }

    /// Fill the workspace acceptance-uniform tensor for the compact
    /// sub-lattice with intra-cell offset `(a, b)` (σ̂ab). Reuses the one
    /// buffer: `Randomness::fill` overwrites every element, and the bulk
    /// stream draws in the same order the old allocate-per-sublattice code
    /// did (first sub-lattice fully, then the second).
    fn fill_probs(&mut self, color: Color, a: usize, b: usize) {
        // Uniform generation maps to the VPU on real hardware.
        let _span = obs::span!("rng_uniforms", obs::SpanKind::Vpu);
        let [_, _, t, _] = self.q00.shape();
        let (row0, col0, sweep) = (self.row0, self.col0, self.sweep_index);
        self.rng.fill(&mut self.ws.probs, sweep, color, |b0, b1, r, c| {
            ((row0 + 2 * (b0 * t + r) + a) as u32, (col0 + 2 * (b1 * t + c) + b) as u32)
        });
        if obs::is_metrics() {
            obs::metrics().counter("rng_draws_total").inc(self.ws.probs.len() as u64);
        }
    }

    /// Metropolis-accept flips for one compact sub-lattice given its
    /// neighbor sums and uniforms, in place: a site flips iff
    /// `u < exp(−2β·nn·σ)` — bitwise the old `σ·(1 − 2·flip)` select,
    /// since `σ·(−1) = −σ` exactly at both precisions.
    fn apply_flips(beta: f64, q: &mut Tensor4<S>, nn: &Tensor4<S>, probs: &Tensor4<S>) {
        // Elementwise exp/compare/select — VPU work on real hardware.
        let _span = obs::span!("metropolis_flips", obs::SpanKind::Vpu);
        assert_eq!(q.shape(), nn.shape(), "apply_flips shape mismatch");
        assert_eq!(q.shape(), probs.shape(), "apply_flips shape mismatch");
        let m2b = S::from_f32((-2.0 * beta) as f32);
        let proposals = q.len() as u64;
        let accepted: u64 = q
            .data_mut()
            .par_iter_mut()
            .zip(nn.data().par_iter())
            .zip(probs.data().par_iter())
            .map(|((s, &nv), &u)| {
                let ratio = ((nv * *s) * m2b).exp();
                if u < ratio {
                    *s = -*s;
                    1u64
                } else {
                    0
                }
            })
            .sum();
        if obs::is_metrics() {
            let m = obs::metrics();
            m.counter("flip_proposals_total").inc(proposals);
            m.counter("flips_accepted_total").inc(accepted);
        }
    }

    /// Update all spins of one color (half a sweep), using the supplied
    /// lattice-boundary halos.
    ///
    /// With [`KernelBackend::Band`] this is one fused pass over
    /// preallocated workspace buffers — band neighbor-sum accumulate,
    /// boundary/halo compensation, uniform generation, acceptance and flip
    /// — with zero heap allocations in steady state. With
    /// [`KernelBackend::Dense`] the neighbor sums go through the reference
    /// [`neighbor_sums`](Self::neighbor_sums) matmuls; flip decisions are
    /// bit-identical either way.
    pub fn update_color(&mut self, color: Color, halos: &ColorHalos<S>) {
        let [m, n, t, _] = self.q00.shape();
        match self.backend {
            KernelBackend::Dense => {
                let (nn0, nn1) = self.neighbor_sums(color, halos);
                self.ws.nn0 = nn0;
                self.ws.nn1 = nn1;
                if obs::is_metrics() {
                    // 4 dense t×t matmuls at 2·t³ flops per tile
                    obs::metrics().counter("kernel_flops").inc((8 * m * n * t * t * t) as u64);
                }
            }
            KernelBackend::Band => {
                let _span = obs::span!("neighbor_sums", obs::SpanKind::Mxu);
                let ws = &mut self.ws;
                band_neighbor_sums(
                    color,
                    &self.q00,
                    &self.q01,
                    &self.q10,
                    &self.q11,
                    halos,
                    &mut ws.nn0,
                    &mut ws.nn1,
                    &mut ws.edge_row,
                    &mut ws.edge_col,
                );
                if obs::is_metrics() {
                    // 4 band products at ~2·t² adds per tile
                    obs::metrics().counter("kernel_flops").inc((8 * m * n * t * t) as u64);
                }
            }
        }
        match color {
            Color::Black => {
                self.fill_probs(color, 0, 0);
                Self::apply_flips(self.beta, &mut self.q00, &self.ws.nn0, &self.ws.probs);
                self.fill_probs(color, 1, 1);
                Self::apply_flips(self.beta, &mut self.q11, &self.ws.nn1, &self.ws.probs);
            }
            Color::White => {
                self.fill_probs(color, 0, 1);
                Self::apply_flips(self.beta, &mut self.q01, &self.ws.nn0, &self.ws.probs);
                self.fill_probs(color, 1, 0);
                Self::apply_flips(self.beta, &mut self.q10, &self.ws.nn1, &self.ws.probs);
            }
        }
    }

    /// Advance the sweep counter (the distributed runner calls this after
    /// updating both colors itself).
    pub fn advance_sweep(&mut self) {
        self.sweep_index += 1;
    }
}

/// Band-path neighbor sums for `color`, written into `nn0`/`nn1` without
/// allocating: the four O(t²) band products plus the tile/lattice boundary
/// compensations, reusing the workspace edge tensors. Mirrors
/// [`CompactIsing::neighbor_sums`] term by term (same product order, same
/// rounding points), so the two paths are bit-identical.
#[allow(clippy::too_many_arguments)]
fn band_neighbor_sums<S: Scalar>(
    color: Color,
    q00: &Tensor4<S>,
    q01: &Tensor4<S>,
    q10: &Tensor4<S>,
    q11: &Tensor4<S>,
    halos: &ColorHalos<S>,
    nn0: &mut Tensor4<S>,
    nn1: &mut Tensor4<S>,
    edge_row: &mut Tensor4<S>,
    edge_col: &mut Tensor4<S>,
) {
    match color {
        Color::Black => {
            // nn(σ̂00) = σ̂01·K̂ + K̂ᵀ·σ̂10
            q01.band_mul_right_into(BandKernel::Bidiag, nn0);
            q10.band_mul_left_acc(BandKernel::BidiagT, nn0);
            q10.rolled_edge_into(1, 0, Axis::Row, Side::Last, edge_row);
            splice_halo_row(edge_row, true, &halos.north);
            nn0.add_edge_assign(Axis::Row, Side::First, edge_row);
            q01.rolled_edge_into(0, 1, Axis::Col, Side::Last, edge_col);
            splice_halo_col(edge_col, true, &halos.first_col);
            nn0.add_edge_assign(Axis::Col, Side::First, edge_col);

            // nn(σ̂11) = K̂·σ̂01 + σ̂10·K̂ᵀ
            q01.band_mul_left_into(BandKernel::Bidiag, nn1);
            q10.band_mul_right_acc(BandKernel::BidiagT, nn1);
            q01.rolled_edge_into(-1, 0, Axis::Row, Side::First, edge_row);
            splice_halo_row(edge_row, false, &halos.south);
            nn1.add_edge_assign(Axis::Row, Side::Last, edge_row);
            q10.rolled_edge_into(0, -1, Axis::Col, Side::First, edge_col);
            splice_halo_col(edge_col, false, &halos.second_col);
            nn1.add_edge_assign(Axis::Col, Side::Last, edge_col);
        }
        Color::White => {
            // nn(σ̂01) = σ̂00·K̂ᵀ + K̂ᵀ·σ̂11
            q00.band_mul_right_into(BandKernel::BidiagT, nn0);
            q11.band_mul_left_acc(BandKernel::BidiagT, nn0);
            q11.rolled_edge_into(1, 0, Axis::Row, Side::Last, edge_row);
            splice_halo_row(edge_row, true, &halos.north);
            nn0.add_edge_assign(Axis::Row, Side::First, edge_row);
            q00.rolled_edge_into(0, -1, Axis::Col, Side::First, edge_col);
            splice_halo_col(edge_col, false, &halos.first_col);
            nn0.add_edge_assign(Axis::Col, Side::Last, edge_col);

            // nn(σ̂10) = K̂·σ̂00 + σ̂11·K̂
            q00.band_mul_left_into(BandKernel::Bidiag, nn1);
            q11.band_mul_right_acc(BandKernel::Bidiag, nn1);
            q00.rolled_edge_into(-1, 0, Axis::Row, Side::First, edge_row);
            splice_halo_row(edge_row, false, &halos.south);
            nn1.add_edge_assign(Axis::Row, Side::Last, edge_row);
            q11.rolled_edge_into(0, 1, Axis::Col, Side::Last, edge_col);
            splice_halo_col(edge_col, true, &halos.second_col);
            nn1.add_edge_assign(Axis::Col, Side::First, edge_col);
        }
    }
}

impl<S: Scalar + RandomUniform> Sweeper for CompactIsing<S> {
    fn sweep(&mut self) {
        let track = obs::is_metrics();
        let alloc0 = if track { obs::alloc::allocated_bytes() } else { 0 };
        for color in [Color::Black, Color::White] {
            let _g = obs::span!("compact_halfsweep");
            // take/restore the halo buffers so the borrow of `self` can be
            // split without cloning; `Vec::new` placeholders don't allocate
            let mut halos = std::mem::take(&mut self.ws.halos);
            self.fill_local_halos(color, &mut halos);
            self.update_color(color, &halos);
            self.ws.halos = halos;
        }
        self.sweep_index += 1;
        if track {
            let delta = obs::alloc::allocated_bytes() - alloc0;
            obs::metrics().gauge("alloc_bytes_per_sweep").set(delta as f64);
        }
    }

    fn sites(&self) -> usize {
        4 * self.q00.len()
    }

    fn magnetization_sum(&self) -> f64 {
        self.q00.sum_f64() + self.q01.sum_f64() + self.q10.sum_f64() + self.q11.sum_f64()
    }

    fn energy_sum(&self) -> f64 {
        crate::observables::energy_sum(&self.to_plane())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::random_plane;
    use crate::reference::ReferenceIsing;

    /// Brute-force torus neighbor sums from the full plane, deinterleaved.
    fn brute_nn(plane: &Plane<f32>, tile: usize) -> [Tensor4<f32>; 4] {
        let nn = plane.neighbor_sum_periodic();
        let parts = nn.deinterleave();
        [
            parts[0].to_tiles(tile),
            parts[1].to_tiles(tile),
            parts[2].to_tiles(tile),
            parts[3].to_tiles(tile),
        ]
    }

    #[test]
    fn neighbor_sums_match_bruteforce() {
        // Multi-tile grid: exercises interior, tile-boundary and
        // lattice-boundary (halo) paths.
        for (h, w, tile) in [(8, 8, 2), (12, 16, 2), (16, 24, 4), (8, 8, 4)] {
            let plane = random_plane::<f32>(33 + h as u64, h, w);
            let c = CompactIsing::from_plane(&plane, tile, 0.4, Randomness::bulk(0));
            let [e00, e01, e10, e11] = brute_nn(&plane, tile);
            let (nn0b, nn1b) = c.neighbor_sums(Color::Black, &c.local_halos(Color::Black));
            let (nn0w, nn1w) = c.neighbor_sums(Color::White, &c.local_halos(Color::White));
            assert_eq!(nn0b, e00, "nn(σ̂00) {h}x{w}/{tile}");
            assert_eq!(nn1b, e11, "nn(σ̂11) {h}x{w}/{tile}");
            assert_eq!(nn0w, e01, "nn(σ̂01) {h}x{w}/{tile}");
            assert_eq!(nn1w, e10, "nn(σ̂10) {h}x{w}/{tile}");
        }
    }

    #[test]
    fn plane_roundtrip() {
        let plane = random_plane::<f32>(5, 12, 8);
        let c = CompactIsing::from_plane(&plane, 2, 0.4, Randomness::bulk(0));
        assert_eq!(c.to_plane(), plane);
    }

    #[test]
    fn matches_reference_exactly_with_site_keyed_rng() {
        // Same seed, same site-keyed randomness ⇒ bit-identical trajectory
        // with the sequential reference sampler.
        let beta = 1.0 / crate::T_CRITICAL;
        let init = random_plane::<f32>(77, 16, 16);
        let mut refer = ReferenceIsing::new(init.clone(), beta, Randomness::site_keyed(123));
        let mut comp = CompactIsing::from_plane(&init, 4, beta, Randomness::site_keyed(123));
        for step in 0..10 {
            refer.sweep();
            comp.sweep();
            assert_eq!(&comp.to_plane(), refer.plane(), "diverged at sweep {step}");
        }
    }

    #[test]
    fn tile_size_does_not_change_trajectory() {
        // Site-keyed randomness makes the tiling an implementation detail.
        let beta = 0.5;
        let init = random_plane::<f32>(11, 16, 16);
        let mut a = CompactIsing::from_plane(&init, 2, beta, Randomness::site_keyed(9));
        let mut b = CompactIsing::from_plane(&init, 8, beta, Randomness::site_keyed(9));
        for _ in 0..5 {
            a.sweep();
            b.sweep();
        }
        assert_eq!(a.to_plane(), b.to_plane());
    }

    #[test]
    fn frozen_at_infinite_beta() {
        let mut c = CompactIsing::from_plane(
            &crate::lattice::cold_plane::<f32>(8, 8),
            2,
            100.0,
            Randomness::bulk(1),
        );
        for _ in 0..5 {
            c.sweep();
        }
        assert_eq!(c.magnetization_sum(), 64.0);
    }

    #[test]
    fn beta_zero_flips_everything() {
        let mut c = CompactIsing::from_plane(
            &crate::lattice::cold_plane::<f32>(8, 8),
            2,
            0.0,
            Randomness::bulk(1),
        );
        c.sweep();
        assert_eq!(c.magnetization_sum(), -64.0);
    }

    #[test]
    fn spins_stay_spins() {
        let mut c =
            CompactIsing::from_plane(&random_plane::<f32>(3, 16, 16), 4, 0.44, Randomness::bulk(2));
        for _ in 0..10 {
            c.sweep();
        }
        assert!(c.to_plane().data().iter().all(|&s| s == 1.0 || s == -1.0));
    }

    #[test]
    fn bf16_trajectory_tracks_f32_statistically() {
        use tpu_ising_bf16::Bf16;
        // Low temperature: both precisions must order from a cold start.
        let beta = 0.7;
        let mut f = CompactIsing::from_plane(
            &crate::lattice::cold_plane::<f32>(16, 16),
            4,
            beta,
            Randomness::bulk(10),
        );
        let mut b = CompactIsing::from_plane(
            &crate::lattice::cold_plane::<Bf16>(16, 16),
            4,
            beta,
            Randomness::bulk(10),
        );
        let (mut mf, mut mb) = (0.0, 0.0);
        for _ in 0..40 {
            f.sweep();
            b.sweep();
            mf += f.magnetization_sum().abs() / 256.0;
            mb += b.magnetization_sum().abs() / 256.0;
        }
        assert!((mf / 40.0 - mb / 40.0).abs() < 0.05, "f32 {mf} vs bf16 {mb}");
    }

    #[test]
    fn sites_counts_full_lattice() {
        let c =
            CompactIsing::from_plane(&random_plane::<f32>(4, 12, 8), 2, 0.4, Randomness::bulk(0));
        assert_eq!(c.sites(), 96);
    }

    #[test]
    #[should_panic(expected = "offsets must be even")]
    fn odd_offsets_panic() {
        let p = random_plane::<f32>(1, 8, 8);
        let _ = CompactIsing::from_plane_at(&p, 2, 0.4, Randomness::bulk(0), 1, 0);
    }

    #[test]
    fn band_neighbor_sums_bit_identical_to_dense() {
        // Odd and even tile counts, rectangular grids.
        for (h, w, tile) in [(8, 8, 2), (12, 20, 2), (16, 24, 4), (24, 8, 4)] {
            let plane = random_plane::<f32>(h as u64 * 7 + w as u64, h, w);
            let mut c = CompactIsing::from_plane(&plane, tile, 0.4, Randomness::bulk(0));
            for color in [Color::Black, Color::White] {
                let halos = c.local_halos(color);
                let (d0, d1) = c.neighbor_sums(color, &halos);
                let ws = &mut c.ws;
                band_neighbor_sums(
                    color,
                    &c.q00,
                    &c.q01,
                    &c.q10,
                    &c.q11,
                    &halos,
                    &mut ws.nn0,
                    &mut ws.nn1,
                    &mut ws.edge_row,
                    &mut ws.edge_col,
                );
                assert_eq!(c.ws.nn0, d0, "{color:?} nn0 {h}x{w}/{tile}");
                assert_eq!(c.ws.nn1, d1, "{color:?} nn1 {h}x{w}/{tile}");
            }
        }
    }

    #[test]
    fn band_backend_trajectory_bit_identical_to_dense_f32() {
        use tpu_ising_tensor::KernelBackend;
        let beta = 1.0 / crate::T_CRITICAL;
        for (h, w, tile) in [(16, 16, 4), (12, 20, 2)] {
            let init = random_plane::<f32>(91, h, w);
            let mut dense = CompactIsing::from_plane(&init, tile, beta, Randomness::bulk(3))
                .with_backend(KernelBackend::Dense);
            let mut band = CompactIsing::from_plane(&init, tile, beta, Randomness::bulk(3))
                .with_backend(KernelBackend::Band);
            for step in 0..8 {
                dense.sweep();
                band.sweep();
                assert_eq!(dense.to_plane(), band.to_plane(), "diverged at sweep {step}");
            }
        }
    }

    #[test]
    fn band_backend_trajectory_bit_identical_to_dense_bf16() {
        use tpu_ising_bf16::Bf16;
        use tpu_ising_tensor::KernelBackend;
        let beta = 0.6;
        let init = random_plane::<Bf16>(17, 16, 24);
        let mut dense = CompactIsing::from_plane(&init, 4, beta, Randomness::bulk(5))
            .with_backend(KernelBackend::Dense);
        let mut band = CompactIsing::from_plane(&init, 4, beta, Randomness::bulk(5))
            .with_backend(KernelBackend::Band);
        for step in 0..8 {
            dense.sweep();
            band.sweep();
            assert_eq!(dense.to_plane(), band.to_plane(), "diverged at sweep {step}");
        }
    }
}
