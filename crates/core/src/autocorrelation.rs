//! Autocorrelation analysis for Markov-chain time series.
//!
//! MCMC samples are serially correlated; the *integrated autocorrelation
//! time* `τ_int` quantifies by how much: a chain of `N` samples carries
//! only `N / (2·τ_int)` independent measurements. The paper's chains
//! (10⁶ sweeps) are long enough to ignore this; our scaled-down CPU runs
//! are not, so the sampler's binning errors are cross-checked against the
//! direct `τ_int` estimate here. Near `Tc` the checkerboard dynamics show
//! critical slowing down — `τ_int` grows with lattice size — which is also
//! the motivation for the Wolff cross-check sampler ([`crate::wolff`]).

/// Sample autocovariance at lag `k` (biased normalization `1/N`, the
/// standard choice for spectral estimates).
pub fn autocovariance(series: &[f64], k: usize) -> f64 {
    let n = series.len();
    assert!(k < n, "lag {k} out of range for {n} samples");
    let mean = series.iter().sum::<f64>() / n as f64;
    series[..n - k]
        .iter()
        .zip(series[k..].iter())
        .map(|(a, b)| (a - mean) * (b - mean))
        .sum::<f64>()
        / n as f64
}

/// Normalized autocorrelation function at lag `k` (`ρ(0) = 1`).
pub fn autocorrelation(series: &[f64], k: usize) -> f64 {
    let c0 = autocovariance(series, 0);
    if c0 == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    autocovariance(series, k) / c0
}

/// Integrated autocorrelation time with the standard self-consistent
/// window (Sokal): sum ρ(k) until `k ≥ c·τ_int(k)`, `c = 6`.
///
/// Returns `τ_int ≥ 0.5`; exactly `0.5` for white noise.
pub fn integrated_autocorrelation_time(series: &[f64]) -> f64 {
    let n = series.len();
    if n < 8 {
        return 0.5;
    }
    let c0 = autocovariance(series, 0);
    if c0 == 0.0 {
        return 0.5;
    }
    let mut tau = 0.5;
    for k in 1..n / 2 {
        tau += autocovariance(series, k) / c0;
        if (k as f64) >= 6.0 * tau {
            break;
        }
    }
    tau.max(0.5)
}

/// Effective number of independent samples: `N / (2·τ_int)`.
pub fn effective_sample_size(series: &[f64]) -> f64 {
    series.len() as f64 / (2.0 * integrated_autocorrelation_time(series))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpu_ising_rng::PhiloxStream;

    fn white_noise(n: usize, seed: u64) -> Vec<f64> {
        let mut s = PhiloxStream::from_seed(seed);
        (0..n).map(|_| s.normal_f32() as f64).collect()
    }

    /// AR(1) process with coefficient φ: exact τ_int = (1+φ)/(2(1−φ)).
    fn ar1(n: usize, phi: f64, seed: u64) -> Vec<f64> {
        let mut s = PhiloxStream::from_seed(seed);
        let mut x = 0.0f64;
        (0..n)
            .map(|_| {
                x = phi * x + s.normal_f32() as f64;
                x
            })
            .collect()
    }

    #[test]
    fn rho_zero_is_one() {
        let v = white_noise(1000, 1);
        assert!((autocorrelation(&v, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn white_noise_has_tau_half() {
        let v = white_noise(20_000, 2);
        let tau = integrated_autocorrelation_time(&v);
        assert!((tau - 0.5).abs() < 0.1, "τ = {tau}");
        let ess = effective_sample_size(&v);
        assert!((ess / 20_000.0 - 1.0).abs() < 0.2, "ESS = {ess}");
    }

    #[test]
    fn ar1_matches_analytic_tau() {
        for phi in [0.5f64, 0.8] {
            let v = ar1(200_000, phi, 3);
            let tau = integrated_autocorrelation_time(&v);
            let exact = (1.0 + phi) / (2.0 * (1.0 - phi));
            assert!((tau - exact).abs() / exact < 0.15, "φ={phi}: τ = {tau} vs exact {exact}");
        }
    }

    #[test]
    fn constant_series_is_degenerate_but_safe() {
        let v = vec![3.0; 100];
        assert_eq!(integrated_autocorrelation_time(&v), 0.5);
        assert!(autocorrelation(&v, 5).abs() < 1e-12);
    }

    #[test]
    fn alternating_series_has_negative_rho1() {
        let v: Vec<f64> = (0..1000).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        assert!(autocorrelation(&v, 1) < -0.9);
        // anticorrelated chains have τ_int < 1/2 formally; clamped to 0.5
        assert!(integrated_autocorrelation_time(&v) >= 0.5);
    }

    #[test]
    fn ising_chain_near_tc_is_slower_than_far_from_tc() {
        use crate::{cold_plane, random_plane, CompactIsing, Randomness, Sweeper, T_CRITICAL};
        let run = |tt: f64, seed: u64| {
            let t = tt * T_CRITICAL;
            let init = if tt < 1.0 {
                cold_plane::<f32>(24, 24)
            } else {
                random_plane::<f32>(seed, 24, 24)
            };
            let mut sim = CompactIsing::from_plane(&init, 4, 1.0 / t, Randomness::bulk(seed));
            for _ in 0..300 {
                sim.sweep();
            }
            let series: Vec<f64> = (0..3000)
                .map(|_| {
                    sim.sweep();
                    sim.magnetization_sum().abs() / 576.0
                })
                .collect();
            integrated_autocorrelation_time(&series)
        };
        let tau_tc = run(1.0, 11);
        let tau_hot = run(1.6, 12);
        assert!(
            tau_tc > 2.0 * tau_hot,
            "critical slowing down absent: τ(Tc) = {tau_tc}, τ(1.6Tc) = {tau_hot}"
        );
    }
}
