//! Parallel tempering (replica exchange) over a temperature ladder.
//!
//! A standard companion to checkerboard sweeps for hard landscapes: `R`
//! replicas run at temperatures `T₁ < T₂ < … < T_R` and adjacent pairs
//! propose configuration swaps with the Metropolis probability
//! `min(1, exp((βᵢ − βⱼ)(Eᵢ − Eⱼ)))`, which preserves the product
//! distribution. Hot replicas tunnel over barriers; cold replicas inherit
//! their discoveries — the same multi-chain structure the paper's Pod
//! naturally provides (one replica per core slice is the obvious mapping).

use crate::compact::CompactIsing;
use crate::lattice::random_plane;
use crate::prob::Randomness;
use crate::sampler::Sweeper;
use tpu_ising_bf16::Scalar;
use tpu_ising_rng::{PhiloxStream, RandomUniform};

/// A parallel-tempering ensemble of compact-algorithm replicas.
pub struct Tempering<S> {
    replicas: Vec<CompactIsing<S>>,
    betas: Vec<f64>,
    swap_rng: PhiloxStream,
    attempted: u64,
    accepted: u64,
}

impl<S: Scalar + RandomUniform> Tempering<S> {
    /// Build an ensemble on an `l × l` lattice with a geometric temperature
    /// ladder from `t_min` to `t_max` (inclusive) and `replicas` rungs.
    pub fn new(l: usize, tile: usize, t_min: f64, t_max: f64, replicas: usize, seed: u64) -> Self {
        assert!(replicas >= 2, "tempering needs at least two rungs");
        assert!(
            t_min.is_finite() && t_min > 0.0,
            "tempering t_min must be a positive finite temperature, got {t_min}; \
             the geometric ladder (t_max/t_min)^f is undefined at or below zero"
        );
        assert!(
            t_max.is_finite() && t_min < t_max,
            "tempering needs finite t_min < t_max, got [{t_min}, {t_max}]"
        );
        let betas: Vec<f64> = (0..replicas)
            .map(|i| {
                let f = i as f64 / (replicas - 1) as f64;
                1.0 / (t_min * (t_max / t_min).powf(f))
            })
            .collect();
        let replicas = betas
            .iter()
            .enumerate()
            .map(|(i, &beta)| {
                CompactIsing::from_plane(
                    &random_plane::<S>(seed.wrapping_add(i as u64), l, l),
                    tile,
                    beta,
                    Randomness::bulk(seed ^ (0xEE77 + i as u64) << 8),
                )
            })
            .collect();
        Tempering {
            replicas,
            betas,
            swap_rng: PhiloxStream::from_seed(seed ^ 0x5A4B_0000),
            attempted: 0,
            accepted: 0,
        }
    }

    /// Number of rungs.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// `true` if the ensemble is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// The β ladder (ascending β = descending temperature? No — index 0 is
    /// the *coldest* rung, matching `betas[0] = 1/t_min`).
    pub fn betas(&self) -> &[f64] {
        &self.betas
    }

    /// The replica at rung `i` (0 = coldest).
    pub fn replica(&self, i: usize) -> &CompactIsing<S> {
        &self.replicas[i]
    }

    /// Fraction of proposed swaps accepted so far.
    pub fn swap_acceptance(&self) -> f64 {
        if self.attempted == 0 {
            return 0.0;
        }
        self.accepted as f64 / self.attempted as f64
    }

    /// One tempering round: every replica sweeps, then adjacent pairs
    /// propose swaps (even pairs on even rounds, odd pairs on odd, the
    /// standard alternation).
    pub fn round(&mut self, round_index: u64) {
        for r in self.replicas.iter_mut() {
            r.sweep();
        }
        let start = (round_index % 2) as usize;
        let energies: Vec<f64> = self.replicas.iter().map(|r| r.energy_sum()).collect();
        let mut i = start;
        while i + 1 < self.replicas.len() {
            let db = self.betas[i] - self.betas[i + 1];
            let de = energies[i] - energies[i + 1];
            let p = (db * de).exp().min(1.0);
            self.attempted += 1;
            if (self.swap_rng.uniform::<f32>() as f64) < p {
                self.accepted += 1;
                self.replicas.swap(i, i + 1);
                // configurations swap rungs; each replica adopts the rung's β
                let (a, b) = (self.betas[i], self.betas[i + 1]);
                self.replicas[i].set_beta(a);
                self.replicas[i + 1].set_beta(b);
            }
            i += 2;
        }
    }

    /// Run `rounds` tempering rounds.
    pub fn run(&mut self, rounds: u64) {
        for k in 0..rounds {
            self.round(k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::T_CRITICAL;

    #[test]
    #[should_panic(expected = "positive finite temperature")]
    fn zero_t_min_is_rejected() {
        let _ = Tempering::<f32>::new(8, 2, 0.0, 4.0, 3, 1);
    }

    #[test]
    #[should_panic(expected = "positive finite temperature")]
    fn negative_t_min_is_rejected() {
        let _ = Tempering::<f32>::new(8, 2, -1.0, 4.0, 3, 1);
    }

    #[test]
    #[should_panic(expected = "finite t_min < t_max")]
    fn infinite_t_max_is_rejected() {
        let _ = Tempering::<f32>::new(8, 2, 1.0, f64::INFINITY, 3, 1);
    }

    #[test]
    fn ladder_betas_are_always_finite() {
        let t = Tempering::<f32>::new(8, 2, 0.25, 16.0, 7, 3);
        assert!(t.betas().iter().all(|b| b.is_finite() && *b > 0.0));
    }

    #[test]
    fn ladder_is_geometric_and_ordered() {
        let t = Tempering::<f32>::new(8, 2, 1.0, 4.0, 5, 1);
        assert_eq!(t.len(), 5);
        assert!((1.0 / t.betas()[0] - 1.0).abs() < 1e-12);
        assert!((1.0 / t.betas()[4] - 4.0).abs() < 1e-12);
        for w in t.betas().windows(2) {
            assert!(w[0] > w[1], "β must descend along the ladder");
        }
    }

    #[test]
    fn swap_probability_formula() {
        // Identical energies or identical β always swap: p = exp(0) = 1.
        // A cold rung with LOWER energy than the hot rung swaps with
        // p = exp(negative) < 1.
        let db = 1.0 / 1.0 - 1.0 / 2.0; // β_cold − β_hot > 0
        let de = -10.0; // cold already lower-energy
        let p = (db * de).exp().min(1.0);
        assert!(p < 1.0);
        let p_eq = (db * 0.0).exp().min(1.0);
        assert_eq!(p_eq, 1.0);
    }

    #[test]
    fn replicas_adopt_the_rungs_beta_after_swaps() {
        let mut t = Tempering::<f32>::new(8, 2, 1.5, 4.0, 4, 3);
        t.run(20);
        for (i, r) in (0..t.len()).map(|i| (i, t.replica(i))) {
            assert!((r.beta() - t.betas()[i]).abs() < 1e-12, "rung {i}");
        }
    }

    #[test]
    fn swaps_do_happen_and_acceptance_is_sane() {
        let mut t = Tempering::<f32>::new(16, 4, 0.7 * T_CRITICAL, 3.0 * T_CRITICAL, 6, 5);
        t.run(60);
        let acc = t.swap_acceptance();
        assert!(acc > 0.05, "swap acceptance {acc} suspiciously low");
        assert!(acc <= 1.0);
    }

    #[test]
    fn coldest_rung_orders_hottest_stays_disordered() {
        let mut t = Tempering::<f32>::new(16, 4, 0.6 * T_CRITICAL, 3.0 * T_CRITICAL, 5, 11);
        t.run(150);
        let n = 256.0;
        let mut cold_m = 0.0;
        let mut hot_m = 0.0;
        for k in 0..60 {
            t.round(150 + k);
            cold_m += t.replica(0).magnetization_sum().abs() / n;
            hot_m += t.replica(t.len() - 1).magnetization_sum().abs() / n;
        }
        cold_m /= 60.0;
        hot_m /= 60.0;
        assert!(cold_m > 0.85, "cold rung ⟨|m|⟩ = {cold_m}");
        assert!(hot_m < 0.35, "hot rung ⟨|m|⟩ = {hot_m}");
    }
}
