//! Terminal visualization of spin configurations.
//!
//! Domain structure is the most intuitive diagnostic for an Ising run —
//! ordered lattices are single-color, critical lattices show fractal
//! clusters, quenches show coarsening domains. [`ascii_render`] draws a
//! downsampled block-character picture; [`domain_stats`] quantifies it.

use tpu_ising_bf16::Scalar;
use tpu_ising_tensor::Plane;

/// Render a plane as block characters, downsampled to at most
/// `max_cols × max_rows` cells (each cell averages its window: `█` for
/// up-majority, `░` for down-majority, `▒` for mixed).
pub fn ascii_render<S: Scalar>(plane: &Plane<S>, max_rows: usize, max_cols: usize) -> String {
    let (h, w) = (plane.height(), plane.width());
    let rows = h.min(max_rows.max(1));
    let cols = w.min(max_cols.max(1));
    let mut out = String::with_capacity(rows * (cols + 1));
    for rr in 0..rows {
        for cc in 0..cols {
            let r0 = rr * h / rows;
            let r1 = ((rr + 1) * h / rows).max(r0 + 1);
            let c0 = cc * w / cols;
            let c1 = ((cc + 1) * w / cols).max(c0 + 1);
            let mut acc = 0.0f64;
            for r in r0..r1 {
                for c in c0..c1 {
                    acc += plane.get(r, c).to_f32() as f64;
                }
            }
            let mean = acc / ((r1 - r0) * (c1 - c0)) as f64;
            out.push(if mean > 0.5 {
                '█'
            } else if mean < -0.5 {
                '░'
            } else {
                '▒'
            });
        }
        out.push('\n');
    }
    out
}

/// Domain statistics: number of connected same-spin clusters (4-neighbor,
/// torus) and the size of the largest one.
pub fn domain_stats<S: Scalar>(plane: &Plane<S>) -> (usize, usize) {
    let (h, w) = (plane.height(), plane.width());
    let mut visited = vec![false; h * w];
    let mut clusters = 0usize;
    let mut largest = 0usize;
    let mut stack = Vec::new();
    for start in 0..h * w {
        if visited[start] {
            continue;
        }
        clusters += 1;
        let spin = plane.get(start / w, start % w).to_f32();
        let mut size = 0usize;
        visited[start] = true;
        stack.push(start);
        while let Some(idx) = stack.pop() {
            size += 1;
            let (r, c) = (idx / w, idx % w);
            let neighbors = [
                ((r + h - 1) % h) * w + c,
                ((r + 1) % h) * w + c,
                r * w + (c + w - 1) % w,
                r * w + (c + 1) % w,
            ];
            for &n in &neighbors {
                if !visited[n] && plane.get(n / w, n % w).to_f32() == spin {
                    visited[n] = true;
                    stack.push(n);
                }
            }
        }
        largest = largest.max(size);
    }
    (clusters, largest)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_plane_renders_solid() {
        let p = crate::lattice::cold_plane::<f32>(8, 8);
        let s = ascii_render(&p, 4, 4);
        assert_eq!(s, "████\n████\n████\n████\n");
    }

    #[test]
    fn down_plane_renders_light() {
        let p = Plane::<f32>::from_fn(4, 4, |_, _| -1.0);
        assert!(ascii_render(&p, 2, 2).chars().filter(|&c| c == '░').count() == 4);
    }

    #[test]
    fn mixed_window_renders_half_tone() {
        let p = Plane::<f32>::from_fn(2, 2, |r, c| if (r + c) % 2 == 0 { 1.0 } else { -1.0 });
        let s = ascii_render(&p, 1, 1);
        assert_eq!(s, "▒\n");
    }

    #[test]
    fn render_dimensions_are_bounded() {
        let p = crate::lattice::random_plane::<f32>(1, 64, 128);
        let s = ascii_render(&p, 10, 20);
        assert_eq!(s.lines().count(), 10);
        assert!(s.lines().all(|l| l.chars().count() == 20));
    }

    #[test]
    fn domain_stats_on_known_patterns() {
        // uniform: one cluster of N
        let p = crate::lattice::cold_plane::<f32>(6, 6);
        assert_eq!(domain_stats(&p), (1, 36));
        // perfect checkerboard: every site its own cluster
        let p = Plane::<f32>::from_fn(4, 4, |r, c| if (r + c) % 2 == 0 { 1.0 } else { -1.0 });
        assert_eq!(domain_stats(&p), (16, 1));
        // two half-planes (rows 0-2 up, 3-5 down): 2 clusters of 18
        let p = Plane::<f32>::from_fn(6, 6, |r, _| if r < 3 { 1.0 } else { -1.0 });
        assert_eq!(domain_stats(&p), (2, 18));
    }

    #[test]
    fn coarsening_reduces_cluster_count() {
        use crate::{CompactIsing, Randomness, Sweeper};
        let init = crate::lattice::random_plane::<f32>(5, 32, 32);
        let (clusters_before, _) = domain_stats(&init);
        let mut sim = CompactIsing::from_plane(&init, 8, 0.9, Randomness::bulk(5));
        for _ in 0..30 {
            sim.sweep();
        }
        let (clusters_after, largest_after) = domain_stats(&sim.to_plane());
        assert!(clusters_after < clusters_before / 2, "{clusters_before} → {clusters_after}");
        assert!(largest_after > 512, "largest domain {largest_after}");
    }
}
