//! Simulated annealing on Ising energy landscapes.
//!
//! The paper's introduction motivates Ising simulation partly through its
//! interdisciplinary uses — combinatorial optimization in operations
//! research and VLSI design among them (its refs \[6\], \[24\]). The recipe is
//! simulated annealing: encode the cost function as an Ising Hamiltonian
//! (here, per-bond couplings — a ±J spin glass is the canonical hard
//! instance) and cool the Metropolis chain slowly so it settles into
//! low-energy states.

use crate::coupling::{Couplings, HeterogeneousIsing};
use crate::lattice::random_plane;
use crate::prob::Randomness;
use crate::sampler::Sweeper;
use tpu_ising_bf16::Scalar;
use tpu_ising_rng::{PhiloxStream, RandomUniform};
use tpu_ising_tensor::Plane;

/// A geometric cooling schedule from `t_start` down to `t_end`.
#[derive(Clone, Copy, Debug)]
pub struct Schedule {
    /// Starting temperature (hot: accepts most moves).
    pub t_start: f64,
    /// Final temperature (cold: greedy).
    pub t_end: f64,
    /// Number of temperature stages.
    pub stages: usize,
    /// Sweeps per stage.
    pub sweeps_per_stage: usize,
}

impl Schedule {
    /// A reasonable default for grid-sized instances.
    pub fn default_for(sweeps_budget: usize) -> Schedule {
        Schedule {
            t_start: 4.0,
            t_end: 0.1,
            stages: 24,
            sweeps_per_stage: (sweeps_budget / 24).max(1),
        }
    }

    /// Temperature of stage `i` (geometric interpolation).
    pub fn temperature(&self, stage: usize) -> f64 {
        if self.stages <= 1 {
            return self.t_end;
        }
        let f = stage as f64 / (self.stages - 1) as f64;
        self.t_start * (self.t_end / self.t_start).powf(f)
    }
}

/// Result of one annealing run.
pub struct AnnealResult<S> {
    /// Best configuration visited.
    pub best_plane: Plane<S>,
    /// Its energy `H(σ)`.
    pub best_energy: f64,
    /// Energy after every stage (the cooling trace).
    pub stage_energies: Vec<f64>,
}

/// Anneal an Ising instance with the given couplings from a random start.
pub fn anneal<S: Scalar + RandomUniform>(
    couplings: Couplings,
    height: usize,
    width: usize,
    schedule: Schedule,
    seed: u64,
) -> AnnealResult<S> {
    let init = random_plane::<S>(seed, height, width);
    let mut sim = HeterogeneousIsing::new(
        init,
        couplings,
        1.0 / schedule.temperature(0),
        Randomness::bulk(seed ^ 0xA44E_A100),
    );
    let mut best_energy = sim.energy();
    let mut best_plane = sim.plane().clone();
    let mut stage_energies = Vec::with_capacity(schedule.stages);
    for stage in 0..schedule.stages {
        sim.set_beta(1.0 / schedule.temperature(stage));
        for _ in 0..schedule.sweeps_per_stage {
            sim.sweep();
            let e = sim.energy();
            if e < best_energy {
                best_energy = e;
                best_plane = sim.plane().clone();
            }
        }
        stage_energies.push(sim.energy());
    }
    AnnealResult { best_plane, best_energy, stage_energies }
}

/// A random ±J (Edwards–Anderson) spin-glass instance: each bond is ±1
/// with equal probability — the canonical frustrated landscape.
pub fn spin_glass_instance(height: usize, width: usize, seed: u64) -> Couplings {
    let mut stream = PhiloxStream::from_seed(seed ^ 0x51A5_5EED);
    let mut bond = move || if stream.next_u32() & 1 == 0 { 1.0f32 } else { -1.0 };
    let h: Vec<f32> = (0..height * width).map(|_| bond()).collect();
    let v: Vec<f32> = (0..height * width).map(|_| bond()).collect();
    Couplings::from_fn(height, width, |r, c| h[r * width + c], |r, c| v[r * width + c])
}

/// A greedy (zero-temperature) quench from the same seed — the baseline
/// annealing must beat on frustrated instances.
pub fn greedy_quench<S: Scalar + RandomUniform>(
    couplings: Couplings,
    height: usize,
    width: usize,
    sweeps: usize,
    seed: u64,
) -> f64 {
    let init = random_plane::<S>(seed, height, width);
    // β extremely large = accept only strictly-downhill moves (plus free
    // moves), i.e. a deterministic local search.
    let mut sim =
        HeterogeneousIsing::new(init, couplings, 1e6, Randomness::bulk(seed ^ 0xA44E_A100));
    for _ in 0..sweeps {
        sim.sweep();
    }
    sim.energy()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_geometric_and_monotone() {
        let s = Schedule { t_start: 4.0, t_end: 0.25, stages: 5, sweeps_per_stage: 1 };
        assert_eq!(s.temperature(0), 4.0);
        assert!((s.temperature(4) - 0.25).abs() < 1e-12);
        for i in 1..5 {
            assert!(s.temperature(i) < s.temperature(i - 1));
            // geometric: constant ratio
            let r0 = s.temperature(1) / s.temperature(0);
            let ri = s.temperature(i) / s.temperature(i - 1);
            assert!((ri - r0).abs() < 1e-9);
        }
    }

    #[test]
    fn ferromagnet_anneals_to_the_exact_ground_state() {
        // Unfrustrated instance: ground state energy is −2N exactly.
        let (h, w) = (12, 12);
        let result = anneal::<f32>(
            Couplings::uniform(h, w, 1.0),
            h,
            w,
            Schedule { t_start: 3.5, t_end: 0.2, stages: 16, sweeps_per_stage: 20 },
            7,
        );
        assert_eq!(result.best_energy, -2.0 * (h * w) as f64);
        // cooling trace decreases (allowing thermal noise early on)
        assert!(result.stage_energies.last().unwrap() < &(result.stage_energies[0] + 1.0));
    }

    #[test]
    fn antiferromagnet_ground_state_is_found_too() {
        let (h, w) = (8, 8);
        let result = anneal::<f32>(
            Couplings::uniform(h, w, -1.0),
            h,
            w,
            Schedule { t_start: 3.5, t_end: 0.2, stages: 16, sweeps_per_stage: 20 },
            9,
        );
        // bipartite lattice: AF ground state also reaches −2N (all bonds
        // satisfied by the checkerboard configuration)
        assert_eq!(result.best_energy, -2.0 * (h * w) as f64);
    }

    #[test]
    fn spin_glass_instance_is_balanced_and_deterministic() {
        let a = spin_glass_instance(8, 8, 3);
        let b = spin_glass_instance(8, 8, 3);
        let c = spin_glass_instance(8, 8, 4);
        let count_neg = |cp: &Couplings| {
            let mut n = 0;
            for r in 0..8 {
                for cc in 0..8 {
                    if cp.right(r, cc) < 0.0 {
                        n += 1;
                    }
                    if cp.down(r, cc) < 0.0 {
                        n += 1;
                    }
                }
            }
            n
        };
        assert_eq!(count_neg(&a), count_neg(&b), "deterministic");
        let na = count_neg(&a);
        assert!((30..=98).contains(&na), "roughly balanced: {na}/128");
        // different seeds give different bond patterns
        let differs = (0..8).any(|r| (0..8).any(|cc| a.right(r, cc) != c.right(r, cc)));
        assert!(differs, "seed must change the instance");
    }

    #[test]
    fn annealing_beats_or_matches_greedy_on_spin_glass() {
        // Annealing is a heuristic: on any single frustrated instance a
        // greedy quench can get lucky, so the comparison is aggregate —
        // annealing must win on average and never lose badly.
        let (h, w) = (12, 12);
        let budget = 320;
        let (mut total_annealed, mut total_greedy) = (0.0, 0.0);
        for seed in 0..6 {
            let inst = spin_glass_instance(h, w, 100 + seed);
            let greedy = greedy_quench::<f32>(inst.clone(), h, w, budget, seed);
            let annealed = anneal::<f32>(
                inst,
                h,
                w,
                Schedule { t_start: 2.5, t_end: 0.1, stages: 16, sweeps_per_stage: budget / 16 },
                seed,
            )
            .best_energy;
            assert!(
                annealed <= greedy + 8.0,
                "seed {seed}: annealed {annealed} far worse than greedy {greedy}"
            );
            total_annealed += annealed;
            total_greedy += greedy;
        }
        assert!(
            total_annealed <= total_greedy,
            "aggregate: annealed {total_annealed} vs greedy {total_greedy}"
        );
    }

    #[test]
    fn best_energy_matches_best_plane() {
        let (h, w) = (8, 8);
        let inst = spin_glass_instance(h, w, 55);
        let result = anneal::<f32>(
            inst.clone(),
            h,
            w,
            Schedule { t_start: 2.0, t_end: 0.2, stages: 8, sweeps_per_stage: 10 },
            2,
        );
        // recompute the energy of the reported best plane
        let check =
            HeterogeneousIsing::new(result.best_plane.clone(), inst, 1.0, Randomness::bulk(0));
        assert_eq!(check.energy(), result.best_energy);
    }
}
