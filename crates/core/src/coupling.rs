//! Non-uniform couplings `J_ij` — the paper's conclusion sketches this as
//! the interesting follow-up ("finding the optimal J_ij given material
//! properties for the case where J is not uniform across all spin sites").
//!
//! The checkerboard decomposition survives arbitrary bond-dependent
//! couplings: a site's energy still depends only on opposite-color
//! neighbors, now weighted per bond, so both colors update in parallel
//! with acceptance `min(1, exp(−2β·σᵢ·Σⱼ Jᵢⱼσⱼ))`.

use crate::lattice::Color;
use crate::prob::Randomness;
use crate::sampler::Sweeper;
use rayon::prelude::*;
use tpu_ising_bf16::Scalar;
use tpu_ising_rng::RandomUniform;
use tpu_ising_tensor::Plane;

/// Per-bond couplings on the torus: `horizontal[r][c]` is the bond between
/// `(r, c)` and `(r, c+1 mod W)`; `vertical[r][c]` between `(r, c)` and
/// `(r+1 mod H, c)`.
#[derive(Clone, Debug)]
pub struct Couplings {
    horizontal: Plane<f32>,
    vertical: Plane<f32>,
}

impl Couplings {
    /// Uniform ferromagnetic couplings `J` (the standard model at `J = 1`).
    pub fn uniform(height: usize, width: usize, j: f32) -> Couplings {
        Couplings {
            horizontal: Plane::from_fn(height, width, |_, _| j),
            vertical: Plane::from_fn(height, width, |_, _| j),
        }
    }

    /// Build from per-bond functions.
    pub fn from_fn(
        height: usize,
        width: usize,
        mut horizontal: impl FnMut(usize, usize) -> f32,
        mut vertical: impl FnMut(usize, usize) -> f32,
    ) -> Couplings {
        Couplings {
            horizontal: Plane::from_fn(height, width, &mut horizontal),
            vertical: Plane::from_fn(height, width, &mut vertical),
        }
    }

    /// Bond to the right of `(r, c)`.
    #[inline]
    pub fn right(&self, r: usize, c: usize) -> f32 {
        self.horizontal.get(r, c)
    }

    /// Bond below `(r, c)`.
    #[inline]
    pub fn down(&self, r: usize, c: usize) -> f32 {
        self.vertical.get(r, c)
    }
}

/// Checkerboard Metropolis with per-bond couplings and an optional
/// per-site external field (the paper's `μ Σ σᵢ` term, generalized to
/// site-dependent `hᵢ`):
/// `H(σ) = −Σ_bonds Jᵢⱼ σᵢσⱼ − Σᵢ hᵢ σᵢ`.
pub struct HeterogeneousIsing<S> {
    plane: Plane<S>,
    couplings: Couplings,
    field: Option<Plane<f32>>,
    beta: f64,
    rng: Randomness,
    sweep_index: u64,
}

impl<S: Scalar + RandomUniform> HeterogeneousIsing<S> {
    /// Wrap an initial configuration with its coupling field (no external
    /// magnetic field).
    pub fn new(plane: Plane<S>, couplings: Couplings, beta: f64, rng: Randomness) -> Self {
        assert_eq!(couplings.horizontal.height(), plane.height());
        assert_eq!(couplings.horizontal.width(), plane.width());
        HeterogeneousIsing { plane, couplings, field: None, beta, rng, sweep_index: 0 }
    }

    /// Add a per-site external field `hᵢ` (builder style).
    pub fn with_field(mut self, field: Plane<f32>) -> Self {
        assert_eq!(field.height(), self.plane.height());
        assert_eq!(field.width(), self.plane.width());
        self.field = Some(field);
        self
    }

    /// Add a uniform external field `h` (builder style).
    pub fn with_uniform_field(self, h: f32) -> Self {
        let (height, width) = (self.plane.height(), self.plane.width());
        self.with_field(Plane::from_fn(height, width, |_, _| h))
    }

    /// The configuration.
    pub fn plane(&self) -> &Plane<S> {
        &self.plane
    }

    /// The coupling field.
    pub fn couplings(&self) -> &Couplings {
        &self.couplings
    }

    /// Inverse temperature.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Change β (annealing schedules).
    pub fn set_beta(&mut self, beta: f64) {
        self.beta = beta;
    }

    /// Weighted neighbor field `Σⱼ Jᵢⱼ σⱼ` at `(r, c)`.
    fn weighted_nn(&self, r: usize, c: usize) -> f32 {
        let (h, w) = (self.plane.height(), self.plane.width());
        let up = (r + h - 1) % h;
        let down = (r + 1) % h;
        let left = (c + w - 1) % w;
        let right = (c + 1) % w;
        self.couplings.right(r, c) * self.plane.get(r, right).to_f32()
            + self.couplings.right(r, left) * self.plane.get(r, left).to_f32()
            + self.couplings.down(r, c) * self.plane.get(down, c).to_f32()
            + self.couplings.down(up, c) * self.plane.get(up, c).to_f32()
    }

    /// `H(σ) = −Σ_bonds Jᵢⱼ σᵢσⱼ − Σᵢ hᵢ σᵢ`.
    pub fn energy(&self) -> f64 {
        let (h, w) = (self.plane.height(), self.plane.width());
        let mut acc = 0.0f64;
        for r in 0..h {
            for c in 0..w {
                let s = self.plane.get(r, c).to_f32();
                acc += (self.couplings.right(r, c) * s * self.plane.get(r, (c + 1) % w).to_f32())
                    as f64;
                acc += (self.couplings.down(r, c) * s * self.plane.get((r + 1) % h, c).to_f32())
                    as f64;
                if let Some(field) = &self.field {
                    acc += (field.get(r, c) * s) as f64;
                }
            }
        }
        -acc
    }

    /// Update all sites of one color.
    pub fn update_color(&mut self, color: Color) {
        let (h, w) = (self.plane.height(), self.plane.width());
        let parity = color.tag() as usize;
        let m2b = (-2.0 * self.beta) as f32;
        let sweep = self.sweep_index;
        // uniforms per site of the color, raster order (bulk) or site-keyed
        let mut probs = vec![S::zero(); h * w];
        match &mut self.rng {
            Randomness::Bulk(stream) => {
                for r in 0..h {
                    for c in 0..w {
                        if (r + c) % 2 == parity {
                            probs[r * w + c] = stream.uniform();
                        }
                    }
                }
            }
            Randomness::SiteKeyed(site) => {
                for r in 0..h {
                    for c in 0..w {
                        if (r + c) % 2 == parity {
                            probs[r * w + c] = site.uniform(sweep, color.tag(), r as u32, c as u32);
                        }
                    }
                }
            }
        }
        let this = &*self;
        let new: Vec<S> = (0..h * w)
            .into_par_iter()
            .map(|idx| {
                let (r, c) = (idx / w, idx % w);
                let s = this.plane.get(r, c);
                if (r + c) % 2 != parity {
                    return s;
                }
                // ΔE = 2σ(Σ Jσ + h) ⇒ acceptance exp(−2β·σ·(nn + h))
                let mut local = this.weighted_nn(r, c);
                if let Some(field) = &this.field {
                    local += field.get(r, c);
                }
                let ratio = S::from_f32((local * s.to_f32() * m2b).exp());
                if probs[idx] < ratio {
                    -s
                } else {
                    s
                }
            })
            .collect();
        self.plane = Plane::from_fn(h, w, |r, c| new[r * w + c]);
    }
}

impl<S: Scalar + RandomUniform> Sweeper for HeterogeneousIsing<S> {
    fn sweep(&mut self) {
        self.update_color(Color::Black);
        self.update_color(Color::White);
        self.sweep_index += 1;
    }

    fn sites(&self) -> usize {
        self.plane.height() * self.plane.width()
    }

    fn magnetization_sum(&self) -> f64 {
        self.plane.sum_f64()
    }

    fn energy_sum(&self) -> f64 {
        self.energy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::{cold_plane, random_plane};
    use crate::sampler::run_chain;

    #[test]
    fn uniform_couplings_reduce_to_standard_energy() {
        let p = random_plane::<f32>(3, 8, 8);
        let het = HeterogeneousIsing::new(
            p.clone(),
            Couplings::uniform(8, 8, 1.0),
            0.4,
            Randomness::bulk(1),
        );
        assert_eq!(het.energy(), crate::observables::energy_sum(&p));
    }

    #[test]
    fn decoupled_lattice_flips_deterministically() {
        // J = 0: every proposal is accepted (exp(0) = 1 > u), so a full
        // sweep negates the entire lattice — |m| is conserved exactly and
        // the sign alternates, no matter how large β is.
        let init = random_plane::<f32>(2, 16, 16);
        let m0 = init.sum_f64();
        let mut het = HeterogeneousIsing::new(
            init,
            Couplings::uniform(16, 16, 0.0),
            5.0,
            Randomness::bulk(2),
        );
        het.sweep();
        assert_eq!(het.magnetization_sum(), -m0);
        het.sweep();
        assert_eq!(het.magnetization_sum(), m0);
        assert_eq!(het.energy(), 0.0);
        let _ = run_chain(&mut het, 2, 4); // driver still works
    }

    #[test]
    fn antiferromagnetic_couplings_order_in_staggered_pattern() {
        // J = −1: the ground state is the checkerboard; staggered
        // magnetization Σ (−1)^{r+c} σ saturates at low T while plain m
        // stays ~0.
        let mut het = HeterogeneousIsing::new(
            random_plane::<f32>(5, 16, 16),
            Couplings::uniform(16, 16, -1.0),
            1.2,
            Randomness::bulk(3),
        );
        for _ in 0..300 {
            het.sweep();
        }
        let mut staggered = 0.0f64;
        for r in 0..16 {
            for c in 0..16 {
                let sign = if (r + c) % 2 == 0 { 1.0 } else { -1.0 };
                staggered += sign * het.plane().get(r, c) as f64;
            }
        }
        let m = het.magnetization_sum().abs() / 256.0;
        assert!(staggered.abs() / 256.0 > 0.9, "staggered m = {}", staggered / 256.0);
        assert!(m < 0.2, "plain m = {m}");
    }

    #[test]
    fn anisotropic_couplings_break_symmetry_consistently() {
        // strong horizontal bonds, zero vertical bonds: rows order
        // independently; total energy counts only horizontal bonds.
        let het = HeterogeneousIsing::new(
            cold_plane::<f32>(8, 8),
            Couplings::from_fn(8, 8, |_, _| 2.0, |_, _| 0.0),
            0.4,
            Randomness::bulk(4),
        );
        // all-up state: horizontal bonds contribute −2·64, vertical 0
        assert_eq!(het.energy(), -128.0);
    }

    #[test]
    fn strong_field_polarizes_against_temperature() {
        // At a temperature where J = 1 alone cannot order the lattice
        // (T = 1.5·Tc), a strong uniform field forces magnetization along
        // the field direction.
        let t = 1.5 * crate::T_CRITICAL;
        let mut free = HeterogeneousIsing::new(
            random_plane::<f32>(3, 16, 16),
            Couplings::uniform(16, 16, 1.0),
            1.0 / t,
            Randomness::bulk(4),
        );
        let mut driven = HeterogeneousIsing::new(
            random_plane::<f32>(3, 16, 16),
            Couplings::uniform(16, 16, 1.0),
            1.0 / t,
            Randomness::bulk(4),
        )
        .with_uniform_field(3.0);
        for _ in 0..200 {
            free.sweep();
            driven.sweep();
        }
        let (mut m_free, mut m_driven) = (0.0, 0.0);
        for _ in 0..100 {
            free.sweep();
            driven.sweep();
            m_free += free.magnetization_sum() / 256.0;
            m_driven += driven.magnetization_sum() / 256.0;
        }
        m_free /= 100.0;
        m_driven /= 100.0;
        assert!(m_free.abs() < 0.3, "free m = {m_free}");
        assert!(m_driven > 0.9, "driven m = {m_driven}");
    }

    #[test]
    fn field_energy_term() {
        // all-up lattice in a uniform field h: H = −2N·J − N·h
        let het = HeterogeneousIsing::new(
            cold_plane::<f32>(4, 4),
            Couplings::uniform(4, 4, 1.0),
            0.4,
            Randomness::bulk(0),
        )
        .with_uniform_field(0.5);
        assert_eq!(het.energy(), -32.0 - 8.0);
    }

    #[test]
    fn zero_field_matches_no_field_bitwise() {
        let init = random_plane::<f32>(6, 8, 8);
        let mk = || {
            HeterogeneousIsing::new(
                init.clone(),
                Couplings::uniform(8, 8, 1.0),
                0.6,
                Randomness::site_keyed(12),
            )
        };
        let mut a = mk();
        let mut b = mk().with_uniform_field(0.0);
        for _ in 0..6 {
            a.sweep();
            b.sweep();
        }
        assert_eq!(a.plane(), b.plane());
    }

    #[test]
    fn matches_homogeneous_implementation_bitwise_at_j1() {
        use crate::conv::ConvIsing;
        // With J ≡ 1 and the same site-keyed randomness, the heterogeneous
        // updater must reproduce the standard one exactly.
        let beta = 0.44;
        let init = random_plane::<f32>(8, 12, 12);
        let mut het = HeterogeneousIsing::new(
            init.clone(),
            Couplings::uniform(12, 12, 1.0),
            beta,
            Randomness::site_keyed(66),
        );
        let mut conv = ConvIsing::new(init, beta, Randomness::site_keyed(66));
        for step in 0..8 {
            het.sweep();
            conv.sweep();
            assert_eq!(het.plane(), conv.plane(), "diverged at sweep {step}");
        }
    }
}
