//! Lattice construction and checkerboard-geometry helpers.

use tpu_ising_bf16::Scalar;
use tpu_ising_rng::SiteRng;
use tpu_ising_tensor::{Plane, Side, Tensor4};

/// The checkerboard color of a site: black ⇔ `(row + col)` even.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Color {
    /// Sites with even coordinate parity (σ̂00 and σ̂11 in compact form).
    Black,
    /// Sites with odd coordinate parity (σ̂01 and σ̂10).
    White,
}

impl Color {
    /// 0 for black, 1 for white — the tag fed to the site-keyed RNG.
    pub fn tag(self) -> u8 {
        match self {
            Color::Black => 0,
            Color::White => 1,
        }
    }

    /// The color of global site `(row, col)`.
    pub fn of(row: usize, col: usize) -> Color {
        if (row + col).is_multiple_of(2) {
            Color::Black
        } else {
            Color::White
        }
    }

    /// The other color.
    pub fn flip(self) -> Color {
        match self {
            Color::Black => Color::White,
            Color::White => Color::Black,
        }
    }
}

/// Domain-separation constant mixed into the seed for lattice
/// initialization, so init spins never reuse update uniforms.
const INIT_SEED_TAG: u64 = 0x1A77_1CE0_0000_0001;

/// A hot (infinite-temperature) lattice: each spin ±1 i.i.d., determined
/// purely by `(seed, row, col)` — so distributed cores can construct their
/// local windows of the *same* global lattice.
pub fn random_plane<S: Scalar>(seed: u64, height: usize, width: usize) -> Plane<S> {
    random_plane_window(seed, height, width, 0, 0)
}

/// The `(height × width)` window of the global random lattice starting at
/// `(row0, col0)`.
pub fn random_plane_window<S: Scalar>(
    seed: u64,
    height: usize,
    width: usize,
    row0: usize,
    col0: usize,
) -> Plane<S> {
    let rng = SiteRng::new(seed ^ INIT_SEED_TAG);
    Plane::from_fn(height, width, |r, c| {
        let w = rng.word(0, 0, (row0 + r) as u32, (col0 + c) as u32);
        if w & 1 == 0 {
            S::one()
        } else {
            -S::one()
        }
    })
}

/// A cold (zero-temperature) lattice: all spins up.
pub fn cold_plane<S: Scalar>(height: usize, width: usize) -> Plane<S> {
    Plane::from_fn(height, width, |_, _| S::one())
}

/// The full boundary row/column of a tiled grid, as the flat vector a
/// neighboring core receives: for `Axis::Row` the concatenation over
/// `(b1, c)` of the first/last spatial row; for `Axis::Col` over `(b0, r)`.
pub fn grid_boundary_row<S: Scalar>(t: &Tensor4<S>, side: Side) -> Vec<S> {
    let mut out = Vec::new();
    grid_boundary_row_into(t, side, &mut out);
    out
}

/// [`grid_boundary_row`] into a reused vector: cleared and refilled, so a
/// caller that keeps the vector around allocates nothing in steady state.
pub fn grid_boundary_row_into<S: Scalar>(t: &Tensor4<S>, side: Side, out: &mut Vec<S>) {
    let [m, n, rr, cc] = t.shape();
    let (b0, r) = match side {
        Side::First => (0, 0),
        Side::Last => (m - 1, rr - 1),
    };
    out.clear();
    out.reserve(n * cc);
    for b1 in 0..n {
        for c in 0..cc {
            out.push(t.get(b0, b1, r, c));
        }
    }
}

/// The full boundary column of a tiled grid (see [`grid_boundary_row`]).
pub fn grid_boundary_col<S: Scalar>(t: &Tensor4<S>, side: Side) -> Vec<S> {
    let mut out = Vec::new();
    grid_boundary_col_into(t, side, &mut out);
    out
}

/// [`grid_boundary_col`] into a reused vector (see
/// [`grid_boundary_row_into`]).
pub fn grid_boundary_col_into<S: Scalar>(t: &Tensor4<S>, side: Side, out: &mut Vec<S>) {
    let [m, n, rr, cc] = t.shape();
    let (b1, c) = match side {
        Side::First => (0, 0),
        Side::Last => (n - 1, cc - 1),
    };
    out.clear();
    out.reserve(m * rr);
    for b0 in 0..m {
        for r in 0..rr {
            out.push(t.get(b0, b1, r, c));
        }
    }
}

/// Overwrite the `b0 = 0` batch row of an edge tensor `[m, n, 1, c]` with a
/// flat halo vector of length `n·c` (used to splice a neighbor core's
/// boundary into the locally-rolled compensation edge).
pub fn splice_halo_row<S: Scalar>(edge: &mut Tensor4<S>, at_first_batch: bool, halo: &[S]) {
    let [m, n, one, cc] = edge.shape();
    assert_eq!(one, 1, "row edge expected");
    assert_eq!(halo.len(), n * cc, "halo row length mismatch");
    let b0 = if at_first_batch { 0 } else { m - 1 };
    for b1 in 0..n {
        for c in 0..cc {
            edge.set(b0, b1, 0, c, halo[b1 * cc + c]);
        }
    }
}

/// Overwrite the `b1 = 0` (or last) batch column of an edge tensor
/// `[m, n, r, 1]` with a flat halo vector of length `m·r`.
pub fn splice_halo_col<S: Scalar>(edge: &mut Tensor4<S>, at_first_batch: bool, halo: &[S]) {
    let [m, n, rr, one] = edge.shape();
    assert_eq!(one, 1, "col edge expected");
    assert_eq!(halo.len(), m * rr, "halo col length mismatch");
    let b1 = if at_first_batch { 0 } else { n - 1 };
    for b0 in 0..m {
        for r in 0..rr {
            edge.set(b0, b1, r, 0, halo[b0 * rr + r]);
        }
    }
}

/// The four full-plane boundary halos a mesh run of a *full-lattice*
/// engine ([`crate::naive::NaiveIsing`], [`crate::conv::ConvIsing`])
/// needs: the neighboring cores' edge rows/columns adjacent to this
/// core's window. Unlike the compact quarter-lattice
/// [`crate::compact::ColorHalos`], these carry both colors — the engines
/// compute locally-periodic neighbor sums first and then *correct* their
/// window boundary with `halo − wrongly_wrapped_own_edge`, which is exact
/// because spins are ±1 and every intermediate sum is a small integer
/// representable in both `f32` and bf16.
#[derive(Clone, Debug, Default)]
pub struct PlaneHalos<S> {
    /// The global row just above the window (north neighbor's last row),
    /// length = window width.
    pub north: Vec<S>,
    /// The global row just below the window (south neighbor's first row).
    pub south: Vec<S>,
    /// The global column just left of the window (west neighbor's last
    /// column), length = window height.
    pub west: Vec<S>,
    /// The global column just right of the window (east neighbor's first
    /// column).
    pub east: Vec<S>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpu_ising_tensor::Axis;

    #[test]
    fn color_parity() {
        assert_eq!(Color::of(0, 0), Color::Black);
        assert_eq!(Color::of(0, 1), Color::White);
        assert_eq!(Color::of(3, 5), Color::Black);
        assert_eq!(Color::Black.flip(), Color::White);
        assert_eq!(Color::Black.tag(), 0);
        assert_eq!(Color::White.tag(), 1);
    }

    #[test]
    fn random_plane_is_spins() {
        let p = random_plane::<f32>(7, 16, 16);
        assert!(p.data().iter().all(|&s| s == 1.0 || s == -1.0));
        // roughly balanced
        let m = p.sum_f64() / 256.0;
        assert!(m.abs() < 0.3, "m = {m}");
    }

    #[test]
    fn random_plane_windows_tile_the_global_lattice() {
        let full = random_plane::<f32>(42, 8, 8);
        let tl = random_plane_window::<f32>(42, 4, 4, 0, 0);
        let br = random_plane_window::<f32>(42, 4, 4, 4, 4);
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(tl.get(r, c), full.get(r, c));
                assert_eq!(br.get(r, c), full.get(4 + r, 4 + c));
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_plane::<f32>(1, 8, 8);
        let b = random_plane::<f32>(2, 8, 8);
        assert_ne!(a, b);
    }

    #[test]
    fn cold_plane_is_magnetized() {
        let p = cold_plane::<f32>(4, 4);
        assert_eq!(p.sum_f64(), 16.0);
    }

    #[test]
    fn grid_boundaries_match_plane_boundaries() {
        let p = Plane::<f32>::from_fn(6, 8, |r, c| (r * 8 + c) as f32);
        let t = p.to_tiles(2);
        assert_eq!(grid_boundary_row(&t, Side::First), p.boundary(Axis::Row, Side::First));
        assert_eq!(grid_boundary_row(&t, Side::Last), p.boundary(Axis::Row, Side::Last));
        assert_eq!(grid_boundary_col(&t, Side::First), p.boundary(Axis::Col, Side::First));
        assert_eq!(grid_boundary_col(&t, Side::Last), p.boundary(Axis::Col, Side::Last));
    }

    #[test]
    fn splice_overwrites_only_target_batch() {
        let mut e = Tensor4::<f32>::zeros([3, 2, 1, 4]);
        let halo: Vec<f32> = (0..8).map(|i| i as f32 + 1.0).collect();
        splice_halo_row(&mut e, true, &halo);
        for b1 in 0..2 {
            for c in 0..4 {
                assert_eq!(e.get(0, b1, 0, c), (b1 * 4 + c) as f32 + 1.0);
                assert_eq!(e.get(1, b1, 0, c), 0.0);
                assert_eq!(e.get(2, b1, 0, c), 0.0);
            }
        }
        let mut ec = Tensor4::<f32>::zeros([2, 3, 4, 1]);
        let halo: Vec<f32> = (0..8).map(|i| i as f32 + 1.0).collect();
        splice_halo_col(&mut ec, false, &halo);
        for b0 in 0..2 {
            for r in 0..4 {
                assert_eq!(ec.get(b0, 2, r, 0), (b0 * 4 + r) as f32 + 1.0);
                assert_eq!(ec.get(b0, 0, r, 0), 0.0);
            }
        }
    }
}
