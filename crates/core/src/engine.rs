//! The unifying `Engine` abstraction over every update algorithm.
//!
//! The crate grew one engine per paper variant — [`NaiveIsing`]
//! (Algorithm 1), [`CompactIsing`] (Algorithm 2), [`ConvIsing`] (the
//! appendix convolution), [`MultiSpinIsing`] (the bit-packed fast path)
//! and [`WolffIsing`] (the cluster cross-check) — and every deployment
//! driver (CLI chains, SPMD pods, resilient restarts, durable vaults,
//! chaos drills) used to be written once *per algorithm*. This module
//! collapses that matrix along the algorithm axis:
//!
//! - [`Engine`] is the object-safe trait for single-lattice chains:
//!   `step`/`sweep`/`observe`/`checkpoint` plus a typed
//!   [`EngineDescriptor`] (algo × backend × dtype) and an
//!   [`EngineCaps`] capability set, so callers branch on *capabilities*
//!   (can it checkpoint? does it mesh? how many replicas?) instead of on
//!   algorithm names.
//! - [`build_engine`] / [`restore_engine`] are the only places that match
//!   on [`Algo`]: everything above them works with `Box<dyn Engine>`.
//! - [`MeshCore`] is the typed (non-object-safe) trait the SPMD pod
//!   drivers are generic over: halo-exchange specs, halo assembly, color
//!   updates and per-sweep observations, with the element/observation/
//!   checkpoint types as associated types so the scalar engines
//!   (`Elem = S`, `Obs = f64`) and the packed engine (`Elem = u64`,
//!   `Obs = [f64; 64]`) share one driver.
//! - [`ScalarMeshEngine`] narrows [`MeshCore`] to the three scalar
//!   checkerboard engines and adds the constructors a pod core needs;
//!   [`with_scalar_engine`] dispatches an `(algo, dtype)` pair to the
//!   matching concrete type exactly once, so the CLI contains zero
//!   per-algorithm match arms.
//!
//! Every trait method forwards to the pre-existing inherent methods; the
//! conformance tests (here and in `crates/suite`) pin trait-built engines
//! bit-exactly to the concrete ones.

use crate::checkpoint::{self, Checkpoint, RestoreError, CHECKPOINT_VERSION};
use crate::compact::{ColorHalos, CompactIsing};
use crate::conv::ConvIsing;
use crate::lattice::{cold_plane, random_plane, Color, PlaneHalos};
use crate::multispin::{MultiSpinCheckpoint, MultiSpinIsing, PackedHalos, REPLICAS};
use crate::naive::NaiveIsing;
use crate::prob::{Randomness, RngState};
use crate::sampler::Sweeper;
use crate::vault;
use crate::wolff::WolffIsing;
use tpu_ising_bf16::{Bf16, Scalar};
use tpu_ising_device::mesh::Dir;
use tpu_ising_rng::RandomUniform;
use tpu_ising_tensor::{KernelBackend, Plane};

// ---------------------------------------------------------------------
// Descriptor types
// ---------------------------------------------------------------------

/// The update algorithm families the crate implements.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algo {
    /// Algorithm 1: full-lattice neighbor sums + parity mask.
    Naive,
    /// Algorithm 2: four compact quarter lattices (the paper's main path).
    Compact,
    /// Appendix variant: plus-kernel convolution.
    Conv,
    /// 64 bit-packed replicas per word.
    Multispin,
    /// Wolff cluster updates (sequential cross-check).
    Wolff,
}

impl Algo {
    /// Every algorithm, in suite-grid row order.
    pub const ALL: [Algo; 5] =
        [Algo::Naive, Algo::Compact, Algo::Conv, Algo::Multispin, Algo::Wolff];

    /// The CLI / checkpoint spelling.
    pub fn name(self) -> &'static str {
        match self {
            Algo::Naive => "naive",
            Algo::Compact => "compact",
            Algo::Conv => "conv",
            Algo::Multispin => "multispin",
            Algo::Wolff => "wolff",
        }
    }

    /// What this algorithm can do, independent of any instance.
    pub fn caps(self) -> EngineCaps {
        match self {
            Algo::Naive | Algo::Compact | Algo::Conv => {
                EngineCaps { checkpoint: true, mesh: true, replicas: 1, has_model: true }
            }
            Algo::Multispin => {
                EngineCaps { checkpoint: true, mesh: true, replicas: REPLICAS, has_model: false }
            }
            Algo::Wolff => {
                EngineCaps { checkpoint: false, mesh: false, replicas: 1, has_model: false }
            }
        }
    }
}

impl std::fmt::Display for Algo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Algo {
    type Err = String;
    fn from_str(s: &str) -> Result<Algo, String> {
        match s {
            "naive" => Ok(Algo::Naive),
            "compact" => Ok(Algo::Compact),
            "conv" => Ok(Algo::Conv),
            "multispin" => Ok(Algo::Multispin),
            "wolff" => Ok(Algo::Wolff),
            other => {
                Err(format!("unknown algo '{other}' (expected naive|compact|conv|multispin|wolff)"))
            }
        }
    }
}

/// Storage precision of an engine's lattice.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dtype {
    /// IEEE single precision.
    F32,
    /// Truncated bfloat16 (the paper's TPU-native precision study).
    Bf16,
    /// One bit per replica spin (multispin only).
    Packed,
}

impl Dtype {
    /// The CLI / checkpoint spelling.
    pub fn name(self) -> &'static str {
        match self {
            Dtype::F32 => "f32",
            Dtype::Bf16 => "bf16",
            Dtype::Packed => "packed",
        }
    }

    /// The dtype of a [`Scalar`] lattice (by its `DTYPE` tag).
    pub fn of_scalar<S: Scalar>() -> Dtype {
        if S::DTYPE == "bf16" {
            Dtype::Bf16
        } else {
            Dtype::F32
        }
    }
}

impl std::fmt::Display for Dtype {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Dtype {
    type Err = String;
    fn from_str(s: &str) -> Result<Dtype, String> {
        match s {
            "f32" => Ok(Dtype::F32),
            "bf16" => Ok(Dtype::Bf16),
            "packed" => Ok(Dtype::Packed),
            other => Err(format!("unknown dtype '{other}' (expected f32|bf16|packed)")),
        }
    }
}

/// How an engine computes its neighbor sums.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendKind {
    /// Matmul kernels ([`KernelBackend::Dense`] or [`KernelBackend::Band`]).
    Kernel(KernelBackend),
    /// Runtime-dispatched SIMD full adders (multispin); the label is the
    /// active ISA tier.
    Simd,
    /// Sequential traversal (Wolff cluster growth).
    Sequential,
}

impl BackendKind {
    /// The display label ("dense", "band", "avx2", "sequential", …).
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Kernel(b) => b.name(),
            BackendKind::Simd => tpu_ising_rng::simd::isa().name(),
            BackendKind::Sequential => "sequential",
        }
    }
}

/// What an engine *is*: the `algo × backend × dtype` coordinate of a
/// capability-grid cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineDescriptor {
    /// Update algorithm family.
    pub algo: Algo,
    /// Neighbor-sum backend.
    pub backend: BackendKind,
    /// Lattice storage precision.
    pub dtype: Dtype,
}

impl std::fmt::Display for EngineDescriptor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}/{}", self.algo, self.backend.name(), self.dtype)
    }
}

/// What an engine *can do* — the flags deployment drivers branch on
/// instead of matching algorithm names.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineCaps {
    /// Supports bit-exact checkpoint / restore.
    pub checkpoint: bool,
    /// Supports SPMD mesh runs with halo exchange.
    pub mesh: bool,
    /// Independent chains advanced per sweep (64 for multispin, else 1).
    pub replicas: usize,
    /// Has an analytic step-time model (`model` command variants).
    pub has_model: bool,
}

/// One measurement of the chain state (extensive sums, not per-site).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Observation {
    /// `Σᵢ σᵢ` over the lattice.
    pub magnetization: f64,
    /// `H(σ) = −Σ_bonds σᵢσⱼ`.
    pub energy: f64,
}

/// An algorithm-tagged snapshot from any checkpoint-capable engine.
#[derive(Clone, Debug)]
pub enum EngineCheckpoint {
    /// A scalar-lattice snapshot (naive / compact / conv share the
    /// algorithm-agnostic [`Checkpoint`] payload; the tag restores the
    /// right engine).
    Scalar {
        /// Which engine wrote the snapshot.
        algo: Algo,
        /// The lattice / RNG / sweep-counter payload.
        snapshot: Checkpoint,
    },
    /// A bit-packed 64-replica snapshot.
    Packed(MultiSpinCheckpoint),
}

impl EngineCheckpoint {
    /// The engine family that wrote this snapshot.
    pub fn algo(&self) -> Algo {
        match self {
            EngineCheckpoint::Scalar { algo, .. } => *algo,
            EngineCheckpoint::Packed(_) => Algo::Multispin,
        }
    }

    /// Sweeps completed at snapshot time.
    pub fn sweep_index(&self) -> u64 {
        match self {
            EngineCheckpoint::Scalar { snapshot, .. } => snapshot.sweep_index,
            EngineCheckpoint::Packed(ck) => ck.sweep_index,
        }
    }
}

// ---------------------------------------------------------------------
// The object-safe Engine trait
// ---------------------------------------------------------------------

/// An update engine as a deployment driver sees it: advanceable
/// ([`Sweeper`]), half-sweep steppable, observable, and (capability
/// permitting) checkpointable — with a typed descriptor identifying the
/// `algo × backend × dtype` cell it occupies.
pub trait Engine: Sweeper {
    /// The `algo × backend × dtype` coordinate of this engine.
    fn descriptor(&self) -> EngineDescriptor;

    /// What this engine can do. Defaults to the algorithm's static caps.
    fn caps(&self) -> EngineCaps {
        self.descriptor().algo.caps()
    }

    /// One half-sweep: update every site of `color`. Calling
    /// `step(Black)` then `step(White)` advances the chain exactly like
    /// one [`Sweeper::sweep`] (the white step also advances the sweep
    /// counter). Engines without checkerboard structure (Wolff) do the
    /// whole sweep on `Black` and nothing on `White`.
    fn step(&mut self, color: Color);

    /// Sweeps completed since the initial configuration.
    fn sweep_index(&self) -> u64;

    /// Extensive observables of the current state (replica mean for
    /// multi-replica engines).
    fn observe(&self) -> Observation {
        Observation { magnetization: self.magnetization_sum(), energy: self.energy_sum() }
    }

    /// Per-replica observables; single-chain engines return one entry.
    fn replica_observations(&self) -> Vec<Observation> {
        vec![self.observe()]
    }

    /// Spin proposals per sweep (replicas × sites for multispin).
    fn flips_per_sweep(&self) -> u64 {
        self.sites() as u64
    }

    /// Per-replica `Σσ` of the current state — cheap (no energy), for
    /// per-sweep statistics loops. Single-chain engines return one entry.
    fn replica_magnetization_sums(&self) -> Vec<f64> {
        vec![self.magnetization_sum()]
    }

    /// Cache-blocking hint: row-tile height for engines that sweep in row
    /// tiles (multispin). `None` restores the automatic choice; engines
    /// without the knob ignore it.
    fn set_tile_rows(&mut self, _rows: Option<usize>) {}

    /// The row-tile height in effect, or `None` for engines without one.
    fn tile_rows(&self) -> Option<usize> {
        None
    }

    /// A restart snapshot, or `None` when `caps().checkpoint` is false.
    fn checkpoint(&self) -> Option<EngineCheckpoint>;
}

impl Sweeper for Box<dyn Engine> {
    fn sweep(&mut self) {
        (**self).sweep();
    }
    fn sites(&self) -> usize {
        (**self).sites()
    }
    fn magnetization_sum(&self) -> f64 {
        (**self).magnetization_sum()
    }
    fn energy_sum(&self) -> f64 {
        (**self).energy_sum()
    }
}

/// A [`Checkpoint`] assembled field-by-field — how the full-lattice
/// engines (which predate the checkpoint format) snapshot without a new
/// format.
#[allow(clippy::too_many_arguments)]
fn scalar_snapshot<S: Scalar>(
    plane: &Plane<S>,
    tile: usize,
    beta: f64,
    sweep_index: u64,
    (row0, col0): (usize, usize),
    rng: RngState,
    backend: KernelBackend,
) -> Checkpoint {
    Checkpoint {
        version: CHECKPOINT_VERSION,
        height: plane.height(),
        width: plane.width(),
        tile,
        beta,
        sweep_index,
        dtype: S::DTYPE.to_string(),
        spins: plane.data().iter().map(|s| s.to_f32()).collect(),
        row0,
        col0,
        rng,
        backend: backend.name().to_string(),
    }
}

/// The shared validation half of restoring a scalar snapshot: version,
/// dtype, payload shape and spin-ness, then the decoded plane plus the
/// backend and RNG to rebuild with.
fn validated_scalar_parts<S: Scalar>(
    ck: &Checkpoint,
) -> Result<(Plane<S>, KernelBackend, Randomness), RestoreError> {
    if ck.version != CHECKPOINT_VERSION {
        return Err(RestoreError(format!("unsupported version {}", ck.version)));
    }
    if ck.dtype != S::DTYPE {
        return Err(RestoreError(format!(
            "checkpoint is {} but restore requested {}",
            ck.dtype,
            S::DTYPE
        )));
    }
    if ck.spins.len() != ck.height * ck.width {
        return Err(RestoreError("spin payload length mismatch".into()));
    }
    if ck.spins.iter().any(|&s| s != 1.0 && s != -1.0) {
        return Err(RestoreError("corrupt spin values (not ±1)".into()));
    }
    let plane = Plane::from_fn(ck.height, ck.width, |r, c| S::from_f32(ck.spins[r * ck.width + c]));
    let backend: KernelBackend = ck.backend.parse().map_err(RestoreError)?;
    Ok((plane, backend, Randomness::from_state(ck.rng)))
}

impl<S: Scalar + RandomUniform> Engine for CompactIsing<S> {
    fn descriptor(&self) -> EngineDescriptor {
        EngineDescriptor {
            algo: Algo::Compact,
            backend: BackendKind::Kernel(self.backend()),
            dtype: Dtype::of_scalar::<S>(),
        }
    }

    fn step(&mut self, color: Color) {
        let halos = self.local_halos(color);
        CompactIsing::update_color(self, color, &halos);
        if color == Color::White {
            self.advance_sweep();
        }
    }

    fn sweep_index(&self) -> u64 {
        CompactIsing::sweep_index(self)
    }

    fn checkpoint(&self) -> Option<EngineCheckpoint> {
        Some(EngineCheckpoint::Scalar {
            algo: Algo::Compact,
            snapshot: checkpoint::checkpoint(self),
        })
    }
}

impl<S: Scalar + RandomUniform> Engine for NaiveIsing<S> {
    fn descriptor(&self) -> EngineDescriptor {
        EngineDescriptor {
            algo: Algo::Naive,
            backend: BackendKind::Kernel(self.backend()),
            dtype: Dtype::of_scalar::<S>(),
        }
    }

    fn step(&mut self, color: Color) {
        NaiveIsing::update_color(self, color);
        if color == Color::White {
            self.advance_sweep();
        }
    }

    fn sweep_index(&self) -> u64 {
        NaiveIsing::sweep_index(self)
    }

    fn checkpoint(&self) -> Option<EngineCheckpoint> {
        Some(EngineCheckpoint::Scalar {
            algo: Algo::Naive,
            snapshot: scalar_snapshot(
                &self.to_plane(),
                self.tile(),
                self.beta(),
                NaiveIsing::sweep_index(self),
                self.window_offset(),
                self.rng_state(),
                self.backend(),
            ),
        })
    }
}

impl<S: Scalar + RandomUniform> Engine for ConvIsing<S> {
    fn descriptor(&self) -> EngineDescriptor {
        EngineDescriptor {
            algo: Algo::Conv,
            backend: BackendKind::Kernel(self.backend()),
            dtype: Dtype::of_scalar::<S>(),
        }
    }

    fn step(&mut self, color: Color) {
        ConvIsing::update_color(self, color);
        if color == Color::White {
            self.advance_sweep();
        }
    }

    fn sweep_index(&self) -> u64 {
        ConvIsing::sweep_index(self)
    }

    fn checkpoint(&self) -> Option<EngineCheckpoint> {
        Some(EngineCheckpoint::Scalar {
            algo: Algo::Conv,
            // Conv has no tile decomposition; the snapshot echoes 0 and
            // restore ignores it.
            snapshot: scalar_snapshot(
                self.plane(),
                0,
                self.beta(),
                ConvIsing::sweep_index(self),
                self.window_offset(),
                self.rng_state(),
                self.backend(),
            ),
        })
    }
}

impl<S: Scalar + RandomUniform> Engine for WolffIsing<S> {
    fn descriptor(&self) -> EngineDescriptor {
        EngineDescriptor {
            algo: Algo::Wolff,
            backend: BackendKind::Sequential,
            dtype: Dtype::of_scalar::<S>(),
        }
    }

    /// Cluster updates have no checkerboard halves: the whole sweep runs
    /// on `Black`, `White` is a no-op.
    fn step(&mut self, color: Color) {
        if color == Color::Black {
            Sweeper::sweep(self);
        }
    }

    /// Wolff keeps no sweep counter of its own; chains drive it through
    /// [`Sweeper`] only. Reported as 0 (see `caps().checkpoint == false`).
    fn sweep_index(&self) -> u64 {
        0
    }

    fn checkpoint(&self) -> Option<EngineCheckpoint> {
        None
    }
}

/// [`Sweeper`] for the packed engine, pooling the 64 replicas: the
/// extensive sums are *replica means*, so `magnetization_sum / sites` is
/// the mean per-site magnetization across chains, directly comparable
/// with the scalar engines' observables.
impl Sweeper for MultiSpinIsing {
    fn sweep(&mut self) {
        MultiSpinIsing::sweep(self);
    }

    fn sites(&self) -> usize {
        MultiSpinIsing::sites(self)
    }

    fn magnetization_sum(&self) -> f64 {
        let m = self.replica_magnetizations();
        m.iter().sum::<f64>() / REPLICAS as f64
    }

    fn energy_sum(&self) -> f64 {
        (0..REPLICAS).map(|k| self.replica_energy(k)).sum::<f64>() / REPLICAS as f64
    }
}

impl Engine for MultiSpinIsing {
    fn descriptor(&self) -> EngineDescriptor {
        EngineDescriptor { algo: Algo::Multispin, backend: BackendKind::Simd, dtype: Dtype::Packed }
    }

    fn step(&mut self, color: Color) {
        MultiSpinIsing::update_color(self, color, None);
        if color == Color::White {
            self.advance_sweep();
        }
    }

    fn sweep_index(&self) -> u64 {
        MultiSpinIsing::sweep_index(self)
    }

    fn replica_observations(&self) -> Vec<Observation> {
        let mags = self.replica_magnetizations();
        (0..REPLICAS)
            .map(|k| Observation { magnetization: mags[k], energy: self.replica_energy(k) })
            .collect()
    }

    fn flips_per_sweep(&self) -> u64 {
        MultiSpinIsing::flips_per_sweep(self)
    }

    fn replica_magnetization_sums(&self) -> Vec<f64> {
        self.replica_magnetizations().to_vec()
    }

    fn set_tile_rows(&mut self, rows: Option<usize>) {
        MultiSpinIsing::set_tile_rows(self, rows);
    }

    fn tile_rows(&self) -> Option<usize> {
        Some(MultiSpinIsing::tile_rows(self))
    }

    fn checkpoint(&self) -> Option<EngineCheckpoint> {
        Some(EngineCheckpoint::Packed(MultiSpinIsing::checkpoint(self)))
    }
}

// ---------------------------------------------------------------------
// Construction and restoration (the only algo matches)
// ---------------------------------------------------------------------

/// Everything needed to build a fresh engine for one grid cell.
#[derive(Clone, Copy, Debug)]
pub struct EngineSpec {
    /// Update algorithm.
    pub algo: Algo,
    /// Storage precision (ignored by multispin, which is always packed).
    pub dtype: Dtype,
    /// Lattice height.
    pub height: usize,
    /// Lattice width.
    pub width: usize,
    /// Tile size for tiled engines (naive / compact).
    pub tile: usize,
    /// Inverse temperature β.
    pub beta: f64,
    /// RNG seed (bulk stream, matching the historical CLI behavior).
    pub seed: u64,
    /// Start all-up instead of hot.
    pub cold: bool,
    /// Kernel backend for the matmul engines.
    pub backend: KernelBackend,
}

/// Build a fresh engine from a spec — the algorithm match for
/// construction. Multispin ignores `dtype`/`cold` (packed, hot start);
/// scalar algos reject `Dtype::Packed`.
pub fn build_engine(spec: &EngineSpec) -> Result<Box<dyn Engine>, String> {
    match (spec.algo, spec.dtype) {
        (Algo::Multispin, _) => {
            Ok(Box::new(MultiSpinIsing::new(spec.height, spec.width, spec.beta, spec.seed)))
        }
        (algo, Dtype::Packed) => {
            Err(format!("dtype 'packed' is multispin-only, not available for {algo}"))
        }
        (_, Dtype::F32) => build_scalar_engine::<f32>(spec),
        (_, Dtype::Bf16) => build_scalar_engine::<Bf16>(spec),
    }
}

fn build_scalar_engine<S: Scalar + RandomUniform + 'static>(
    spec: &EngineSpec,
) -> Result<Box<dyn Engine>, String> {
    let init: Plane<S> = if spec.cold {
        cold_plane(spec.height, spec.width)
    } else {
        random_plane(spec.seed, spec.height, spec.width)
    };
    let rng = Randomness::bulk(spec.seed);
    Ok(match spec.algo {
        Algo::Compact => Box::new(
            CompactIsing::from_plane(&init, spec.tile, spec.beta, rng).with_backend(spec.backend),
        ),
        Algo::Naive => Box::new(
            NaiveIsing::from_plane(&init, spec.tile, spec.beta, rng).with_backend(spec.backend),
        ),
        Algo::Conv => Box::new(ConvIsing::new(init, spec.beta, rng).with_backend(spec.backend)),
        Algo::Wolff => Box::new(WolffIsing::new(init, spec.beta, rng)),
        Algo::Multispin => unreachable!("handled by build_engine"),
    })
}

/// Rebuild an engine from a snapshot, continuing the interrupted chain
/// bit-exactly — the algorithm match for restoration.
pub fn restore_engine(ck: &EngineCheckpoint) -> Result<Box<dyn Engine>, RestoreError> {
    match ck {
        EngineCheckpoint::Packed(ms) => MultiSpinIsing::restore(ms)
            .map(|e| Box::new(e) as Box<dyn Engine>)
            .map_err(RestoreError),
        EngineCheckpoint::Scalar { algo, snapshot } => match snapshot.dtype.as_str() {
            "f32" => restore_scalar_engine::<f32>(*algo, snapshot),
            "bf16" => restore_scalar_engine::<Bf16>(*algo, snapshot),
            other => Err(RestoreError(format!("unknown dtype '{other}'"))),
        },
    }
}

fn restore_scalar_engine<S: Scalar + RandomUniform + 'static>(
    algo: Algo,
    ck: &Checkpoint,
) -> Result<Box<dyn Engine>, RestoreError> {
    match algo {
        Algo::Compact => checkpoint::restore::<S>(ck).map(|sim| Box::new(sim) as Box<dyn Engine>),
        Algo::Naive => {
            let (plane, backend, rng) = validated_scalar_parts::<S>(ck)?;
            let mut sim =
                NaiveIsing::from_plane_at(&plane, ck.tile, ck.beta, rng, ck.row0, ck.col0)
                    .with_backend(backend);
            sim.set_sweep_index(ck.sweep_index);
            Ok(Box::new(sim))
        }
        Algo::Conv => {
            let (plane, backend, rng) = validated_scalar_parts::<S>(ck)?;
            let mut sim =
                ConvIsing::new_at(plane, ck.beta, rng, ck.row0, ck.col0).with_backend(backend);
            sim.set_sweep_index(ck.sweep_index);
            Ok(Box::new(sim))
        }
        Algo::Multispin | Algo::Wolff => {
            Err(RestoreError(format!("{algo} does not restore from a scalar snapshot")))
        }
    }
}

// ---------------------------------------------------------------------
// MeshCore: the typed trait the SPMD pod drivers are generic over
// ---------------------------------------------------------------------

/// One core's engine in an SPMD mesh run, as the generic pod driver sees
/// it: it announces what to send each half-sweep, assembles what arrived,
/// updates with the halos, and snapshots for the checkpoint store. The
/// four halo specs use fixed *receiver-slot* order — the payload shifted
/// in slot `i` lands in slot `i` of `assemble_halos`'s `received` array
/// as `[north, south, west, east]` (compact: first/second column).
///
/// `Send + Sync` because the cooperative mesh runtime migrates a core's
/// task (and therefore its engine) between worker threads at suspension
/// points; engines are plain owned data, so this costs nothing.
pub trait MeshCore: Send + Sync {
    /// Wire element of a halo vector (`S` for scalar engines, `u64`
    /// packed words for multispin).
    type Elem: Clone + Send + 'static;
    /// The assembled halo set one color update consumes.
    type Halos;
    /// Per-sweep observation (`f64` magnetization sum, or one per
    /// replica).
    type Obs: Clone + Send + 'static;
    /// Per-core snapshot payload.
    type Ckpt: Clone + Send + 'static;

    /// The four `(payload, direction)` collective-permute specs of one
    /// half-sweep, in receiver-slot order.
    fn halo_exchange_spec(&self, color: Color) -> [(Vec<Self::Elem>, Dir); 4];

    /// Assemble the four received vectors (same slot order as
    /// [`halo_exchange_spec`](Self::halo_exchange_spec)) into the halo
    /// set for `color`.
    fn assemble_halos(&self, color: Color, received: [Vec<Self::Elem>; 4]) -> Self::Halos;

    /// Update every site of `color` using cross-core halos.
    fn update_color_with(&mut self, color: Color, halos: &Self::Halos);

    /// Commit one full sweep (advances the sweep counter).
    fn advance_sweep(&mut self);

    /// Sweeps completed.
    fn sweep_index(&self) -> u64;

    /// This sweep's observation of the local window.
    fn observe_window(&self) -> Self::Obs;

    /// Snapshot the core. `tile_hint` is the pod-level tile knob for
    /// engines that don't track one themselves (conv).
    fn snapshot(&self, tile_hint: usize) -> Self::Ckpt;

    // --- integrity: scrubbing and wire checksums ----------------------

    /// CRC-32 digest over the core's full lattice state. Two engines
    /// holding the same spins — regardless of internal layout — return
    /// the same digest, so the scrubber can verify it across snapshot /
    /// resume boundaries.
    fn state_digest(&self) -> u32;

    /// Flip one unit of lattice state in place — the silent-data-
    /// corruption injection. Packed engines flip bit `bit % 64` of word
    /// `word % words`; scalar engines negate the spin at linear site
    /// `word % sites` (a *legal* spin value, so nothing downstream
    /// faults — only the digest can tell).
    fn flip_lattice_bit(&mut self, word: usize, bit: u8);

    /// Fold halo wire elements into an in-flight CRC-32 state (start
    /// from `0xFFFF_FFFF`, invert to finish).
    fn fold_elems(state: u32, elems: &[Self::Elem]) -> u32;

    /// Encode a finished CRC-32 as a 4-element wire trailer, one byte
    /// per element. Scalar engines carry each byte as an exact small
    /// float (0..=255 round-trips through bf16), so the trailer needs
    /// no side channel next to the payload.
    fn encode_crc(crc: u32) -> [Self::Elem; 4];

    /// Decode a trailer produced by [`encode_crc`](Self::encode_crc).
    fn decode_crc(trailer: &[Self::Elem]) -> u32;

    /// Corrupt one wire element in place — the halo-corruption
    /// injection. Packed engines flip a real bit; scalar engines negate
    /// the element.
    fn flip_elem_bit(e: &mut Self::Elem, bit: u8);
}

/// CRC-32 over a plane's spins in row-major order, folding each
/// element's f32 bit pattern. Layout-independent: every scalar engine
/// digests through its plane view, so naive/conv/compact windows over
/// the same spins agree.
pub(crate) fn plane_digest<S: Scalar>(p: &Plane<S>) -> u32 {
    let mut state = 0xFFFF_FFFFu32;
    for r in 0..p.height() {
        for c in 0..p.width() {
            state = vault::crc32_update(state, &p.get(r, c).to_f32().to_bits().to_le_bytes());
        }
    }
    !state
}

fn scalar_fold_elems<S: Scalar>(mut state: u32, elems: &[S]) -> u32 {
    for e in elems {
        state = vault::crc32_update(state, &e.to_f32().to_bits().to_le_bytes());
    }
    state
}

fn scalar_encode_crc<S: Scalar>(crc: u32) -> [S; 4] {
    crc.to_le_bytes().map(|b| S::from_f32(b as f32))
}

fn scalar_decode_crc<S: Scalar>(trailer: &[S]) -> u32 {
    let mut bytes = [0u8; 4];
    for (slot, e) in bytes.iter_mut().zip(trailer) {
        *slot = e.to_f32() as u8;
    }
    u32::from_le_bytes(bytes)
}

fn scalar_flip_elem<S: Scalar>(e: &mut S) {
    *e = S::from_f32(-e.to_f32());
}

/// A scalar checkerboard engine that can serve as a pod core: a
/// [`MeshCore`] over scalar halos plus the constructors the generic SPMD
/// driver needs to build or resume a window.
pub trait ScalarMeshEngine<S: Scalar + RandomUniform>:
    MeshCore<Elem = S, Obs = f64, Ckpt = Checkpoint> + Engine + Sized
{
    /// The algorithm tag recorded in pod checkpoints.
    const ALGO: Algo;

    /// Wrap a window of the global lattice at offset `(row0, col0)`.
    #[allow(clippy::too_many_arguments)]
    fn from_plane_at_backend(
        plane: &Plane<S>,
        tile: usize,
        beta: f64,
        rng: Randomness,
        row0: usize,
        col0: usize,
        backend: KernelBackend,
    ) -> Self;

    /// Fast-forward the sweep counter (resume).
    fn set_sweep_index(&mut self, sweep: u64);

    /// The local window as a plane (stitching / snapshots).
    fn to_plane(&self) -> Plane<S>;
}

impl<S: Scalar + RandomUniform> MeshCore for CompactIsing<S> {
    type Elem = S;
    type Halos = ColorHalos<S>;
    type Obs = f64;
    type Ckpt = Checkpoint;

    fn halo_exchange_spec(&self, color: Color) -> [(Vec<S>, Dir); 4] {
        CompactIsing::halo_exchange_spec(self, color)
    }

    fn assemble_halos(&self, _color: Color, received: [Vec<S>; 4]) -> ColorHalos<S> {
        let [north, south, first_col, second_col] = received;
        ColorHalos { north, south, first_col, second_col }
    }

    fn update_color_with(&mut self, color: Color, halos: &ColorHalos<S>) {
        CompactIsing::update_color(self, color, halos);
    }

    fn advance_sweep(&mut self) {
        CompactIsing::advance_sweep(self);
    }

    fn sweep_index(&self) -> u64 {
        CompactIsing::sweep_index(self)
    }

    fn observe_window(&self) -> f64 {
        Sweeper::magnetization_sum(self)
    }

    fn snapshot(&self, _tile_hint: usize) -> Checkpoint {
        checkpoint::checkpoint(self)
    }

    fn state_digest(&self) -> u32 {
        plane_digest(&CompactIsing::to_plane(self))
    }

    fn flip_lattice_bit(&mut self, word: usize, _bit: u8) {
        self.flip_spin(word);
    }

    fn fold_elems(state: u32, elems: &[S]) -> u32 {
        scalar_fold_elems(state, elems)
    }

    fn encode_crc(crc: u32) -> [S; 4] {
        scalar_encode_crc(crc)
    }

    fn decode_crc(trailer: &[S]) -> u32 {
        scalar_decode_crc(trailer)
    }

    fn flip_elem_bit(e: &mut S, _bit: u8) {
        scalar_flip_elem(e);
    }
}

impl<S: Scalar + RandomUniform> ScalarMeshEngine<S> for CompactIsing<S> {
    const ALGO: Algo = Algo::Compact;

    fn from_plane_at_backend(
        plane: &Plane<S>,
        tile: usize,
        beta: f64,
        rng: Randomness,
        row0: usize,
        col0: usize,
        backend: KernelBackend,
    ) -> Self {
        CompactIsing::from_plane_at(plane, tile, beta, rng, row0, col0).with_backend(backend)
    }

    fn set_sweep_index(&mut self, sweep: u64) {
        CompactIsing::set_sweep_index(self, sweep);
    }

    fn to_plane(&self) -> Plane<S> {
        CompactIsing::to_plane(self)
    }
}

impl<S: Scalar + RandomUniform> MeshCore for NaiveIsing<S> {
    type Elem = S;
    type Halos = PlaneHalos<S>;
    type Obs = f64;
    type Ckpt = Checkpoint;

    fn halo_exchange_spec(&self, color: Color) -> [(Vec<S>, Dir); 4] {
        NaiveIsing::halo_exchange_spec(self, color)
    }

    fn assemble_halos(&self, _color: Color, received: [Vec<S>; 4]) -> PlaneHalos<S> {
        let [north, south, west, east] = received;
        PlaneHalos { north, south, west, east }
    }

    fn update_color_with(&mut self, color: Color, halos: &PlaneHalos<S>) {
        self.update_color_with_halos(color, halos);
    }

    fn advance_sweep(&mut self) {
        NaiveIsing::advance_sweep(self);
    }

    fn sweep_index(&self) -> u64 {
        NaiveIsing::sweep_index(self)
    }

    fn observe_window(&self) -> f64 {
        Sweeper::magnetization_sum(self)
    }

    fn snapshot(&self, _tile_hint: usize) -> Checkpoint {
        scalar_snapshot(
            &NaiveIsing::to_plane(self),
            self.tile(),
            self.beta(),
            NaiveIsing::sweep_index(self),
            self.window_offset(),
            self.rng_state(),
            self.backend(),
        )
    }

    fn state_digest(&self) -> u32 {
        plane_digest(&NaiveIsing::to_plane(self))
    }

    fn flip_lattice_bit(&mut self, word: usize, _bit: u8) {
        self.flip_spin(word);
    }

    fn fold_elems(state: u32, elems: &[S]) -> u32 {
        scalar_fold_elems(state, elems)
    }

    fn encode_crc(crc: u32) -> [S; 4] {
        scalar_encode_crc(crc)
    }

    fn decode_crc(trailer: &[S]) -> u32 {
        scalar_decode_crc(trailer)
    }

    fn flip_elem_bit(e: &mut S, _bit: u8) {
        scalar_flip_elem(e);
    }
}

impl<S: Scalar + RandomUniform> ScalarMeshEngine<S> for NaiveIsing<S> {
    const ALGO: Algo = Algo::Naive;

    fn from_plane_at_backend(
        plane: &Plane<S>,
        tile: usize,
        beta: f64,
        rng: Randomness,
        row0: usize,
        col0: usize,
        backend: KernelBackend,
    ) -> Self {
        NaiveIsing::from_plane_at(plane, tile, beta, rng, row0, col0).with_backend(backend)
    }

    fn set_sweep_index(&mut self, sweep: u64) {
        NaiveIsing::set_sweep_index(self, sweep);
    }

    fn to_plane(&self) -> Plane<S> {
        NaiveIsing::to_plane(self)
    }
}

impl<S: Scalar + RandomUniform> MeshCore for ConvIsing<S> {
    type Elem = S;
    type Halos = PlaneHalos<S>;
    type Obs = f64;
    type Ckpt = Checkpoint;

    fn halo_exchange_spec(&self, color: Color) -> [(Vec<S>, Dir); 4] {
        ConvIsing::halo_exchange_spec(self, color)
    }

    fn assemble_halos(&self, _color: Color, received: [Vec<S>; 4]) -> PlaneHalos<S> {
        let [north, south, west, east] = received;
        PlaneHalos { north, south, west, east }
    }

    fn update_color_with(&mut self, color: Color, halos: &PlaneHalos<S>) {
        self.update_color_with_halos(color, halos);
    }

    fn advance_sweep(&mut self) {
        ConvIsing::advance_sweep(self);
    }

    fn sweep_index(&self) -> u64 {
        ConvIsing::sweep_index(self)
    }

    fn observe_window(&self) -> f64 {
        Sweeper::magnetization_sum(self)
    }

    fn snapshot(&self, tile_hint: usize) -> Checkpoint {
        scalar_snapshot(
            self.plane(),
            tile_hint,
            self.beta(),
            ConvIsing::sweep_index(self),
            self.window_offset(),
            self.rng_state(),
            self.backend(),
        )
    }

    fn state_digest(&self) -> u32 {
        plane_digest(self.plane())
    }

    fn flip_lattice_bit(&mut self, word: usize, _bit: u8) {
        self.flip_spin(word);
    }

    fn fold_elems(state: u32, elems: &[S]) -> u32 {
        scalar_fold_elems(state, elems)
    }

    fn encode_crc(crc: u32) -> [S; 4] {
        scalar_encode_crc(crc)
    }

    fn decode_crc(trailer: &[S]) -> u32 {
        scalar_decode_crc(trailer)
    }

    fn flip_elem_bit(e: &mut S, _bit: u8) {
        scalar_flip_elem(e);
    }
}

impl<S: Scalar + RandomUniform> ScalarMeshEngine<S> for ConvIsing<S> {
    const ALGO: Algo = Algo::Conv;

    fn from_plane_at_backend(
        plane: &Plane<S>,
        _tile: usize,
        beta: f64,
        rng: Randomness,
        row0: usize,
        col0: usize,
        backend: KernelBackend,
    ) -> Self {
        ConvIsing::new_at(plane.clone(), beta, rng, row0, col0).with_backend(backend)
    }

    fn set_sweep_index(&mut self, sweep: u64) {
        ConvIsing::set_sweep_index(self, sweep);
    }

    fn to_plane(&self) -> Plane<S> {
        self.plane().clone()
    }
}

impl MeshCore for MultiSpinIsing {
    type Elem = u64;
    type Halos = PackedHalos;
    type Obs = [f64; REPLICAS];
    type Ckpt = MultiSpinCheckpoint;

    fn halo_exchange_spec(&self, color: Color) -> [(Vec<u64>, Dir); 4] {
        MultiSpinIsing::halo_exchange_spec(self, color)
    }

    fn assemble_halos(&self, _color: Color, received: [Vec<u64>; 4]) -> PackedHalos {
        let [north, south, west, east] = received;
        PackedHalos { north, south, west, east }
    }

    fn update_color_with(&mut self, color: Color, halos: &PackedHalos) {
        MultiSpinIsing::update_color(self, color, Some(halos));
    }

    fn advance_sweep(&mut self) {
        MultiSpinIsing::advance_sweep(self);
    }

    fn sweep_index(&self) -> u64 {
        MultiSpinIsing::sweep_index(self)
    }

    fn observe_window(&self) -> [f64; REPLICAS] {
        self.replica_magnetizations()
    }

    fn snapshot(&self, _tile_hint: usize) -> MultiSpinCheckpoint {
        MultiSpinIsing::checkpoint(self)
    }

    fn state_digest(&self) -> u32 {
        MultiSpinIsing::state_digest(self)
    }

    fn flip_lattice_bit(&mut self, word: usize, bit: u8) {
        self.corrupt_word(word, bit);
    }

    fn fold_elems(mut state: u32, elems: &[u64]) -> u32 {
        for w in elems {
            state = vault::crc32_update(state, &w.to_le_bytes());
        }
        state
    }

    fn encode_crc(crc: u32) -> [u64; 4] {
        crc.to_le_bytes().map(|b| b as u64)
    }

    fn decode_crc(trailer: &[u64]) -> u32 {
        let mut bytes = [0u8; 4];
        for (slot, w) in bytes.iter_mut().zip(trailer) {
            *slot = *w as u8;
        }
        u32::from_le_bytes(bytes)
    }

    fn flip_elem_bit(e: &mut u64, bit: u8) {
        *e ^= 1 << (bit % 64);
    }
}

// ---------------------------------------------------------------------
// Scalar-engine dispatch (the visitor the CLI uses)
// ---------------------------------------------------------------------

/// A computation generic over which scalar mesh engine runs it. The CLI
/// pod / chaos / vault drivers implement this once; [`with_scalar_engine`]
/// instantiates it for the `(algo, dtype)` the user asked for.
pub trait ScalarEngineVisitor {
    /// The computation's result.
    type Out;

    /// Run with the concrete engine type `E` over scalar `S`.
    fn visit<S, E>(self) -> Self::Out
    where
        S: Scalar + RandomUniform + 'static,
        E: ScalarMeshEngine<S> + Send + 'static;
}

/// Dispatch `(algo, dtype)` to the matching concrete scalar mesh engine
/// — the one algorithm match for every mesh deployment shape. Errors on
/// combinations with no scalar mesh engine (wolff is sequential-only,
/// multispin is packed and drives the packed pod path via
/// `EngineCaps::replicas`).
pub fn with_scalar_engine<V: ScalarEngineVisitor>(
    algo: Algo,
    dtype: Dtype,
    v: V,
) -> Result<V::Out, String> {
    match (algo, dtype) {
        (Algo::Compact, Dtype::F32) => Ok(v.visit::<f32, CompactIsing<f32>>()),
        (Algo::Compact, Dtype::Bf16) => Ok(v.visit::<Bf16, CompactIsing<Bf16>>()),
        (Algo::Naive, Dtype::F32) => Ok(v.visit::<f32, NaiveIsing<f32>>()),
        (Algo::Naive, Dtype::Bf16) => Ok(v.visit::<Bf16, NaiveIsing<Bf16>>()),
        (Algo::Conv, Dtype::F32) => Ok(v.visit::<f32, ConvIsing<f32>>()),
        (Algo::Conv, Dtype::Bf16) => Ok(v.visit::<Bf16, ConvIsing<Bf16>>()),
        (Algo::Multispin, _) => {
            Err("multispin is bit-packed; drive it through the packed pod path".into())
        }
        (Algo::Wolff, _) => Err("wolff grows clusters sequentially and has no mesh support".into()),
        (algo, Dtype::Packed) => Err(format!("dtype 'packed' is multispin-only, not {algo}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::T_CRITICAL;

    fn spec(algo: Algo, dtype: Dtype) -> EngineSpec {
        EngineSpec {
            algo,
            dtype,
            height: 16,
            width: 16,
            tile: 4,
            beta: 1.0 / T_CRITICAL,
            seed: 9,
            cold: false,
            backend: KernelBackend::Band,
        }
    }

    #[test]
    fn algo_and_dtype_spellings_roundtrip() {
        for algo in Algo::ALL {
            assert_eq!(algo.name().parse::<Algo>().unwrap(), algo);
        }
        for dtype in [Dtype::F32, Dtype::Bf16, Dtype::Packed] {
            assert_eq!(dtype.name().parse::<Dtype>().unwrap(), dtype);
        }
        assert!("gpu".parse::<Algo>().is_err());
        assert!("f64".parse::<Dtype>().is_err());
    }

    #[test]
    fn caps_encode_the_capability_grid() {
        assert!(Algo::Compact.caps().mesh && Algo::Compact.caps().checkpoint);
        assert!(Algo::Naive.caps().mesh && Algo::Conv.caps().mesh);
        assert_eq!(Algo::Multispin.caps().replicas, REPLICAS);
        let wolff = Algo::Wolff.caps();
        assert!(!wolff.mesh && !wolff.checkpoint);
        assert_eq!(wolff.replicas, 1);
    }

    #[test]
    fn build_engine_covers_every_supported_cell() {
        for algo in Algo::ALL {
            for dtype in [Dtype::F32, Dtype::Bf16] {
                let mut e = build_engine(&spec(algo, dtype)).unwrap();
                let d = e.descriptor();
                assert_eq!(d.algo, algo);
                if algo == Algo::Multispin {
                    assert_eq!(d.dtype, Dtype::Packed);
                } else {
                    assert_eq!(d.dtype, dtype);
                }
                e.sweep();
                assert_eq!(e.sites(), 256);
                let m = e.observe().magnetization;
                assert!(m.abs() <= 256.0, "{algo}/{dtype}: |Σσ| = {m}");
                assert_eq!(e.caps().checkpoint, e.checkpoint().is_some(), "{algo}");
            }
        }
        // packed dtype is multispin-only
        assert!(build_engine(&spec(Algo::Compact, Dtype::Packed)).is_err());
        assert!(build_engine(&spec(Algo::Multispin, Dtype::Packed)).is_ok());
    }

    #[test]
    fn two_steps_equal_one_sweep() {
        for algo in [Algo::Naive, Algo::Compact, Algo::Conv, Algo::Multispin] {
            let mut stepped = build_engine(&spec(algo, Dtype::F32)).unwrap();
            let mut swept = build_engine(&spec(algo, Dtype::F32)).unwrap();
            for _ in 0..3 {
                stepped.step(Color::Black);
                stepped.step(Color::White);
                swept.sweep();
            }
            assert_eq!(stepped.sweep_index(), 3, "{algo}");
            assert_eq!(swept.sweep_index(), 3, "{algo}");
            assert_eq!(stepped.observe(), swept.observe(), "{algo}");
        }
    }

    #[test]
    fn checkpoint_restore_is_bit_exact_for_every_capable_engine() {
        for algo in [Algo::Naive, Algo::Compact, Algo::Conv, Algo::Multispin] {
            let mut reference = build_engine(&spec(algo, Dtype::F32)).unwrap();
            let mut interrupted = build_engine(&spec(algo, Dtype::F32)).unwrap();
            for _ in 0..6 {
                reference.sweep();
            }
            for _ in 0..2 {
                interrupted.sweep();
            }
            let ck = interrupted.checkpoint().expect("checkpoint-capable");
            assert_eq!(ck.algo(), algo);
            assert_eq!(ck.sweep_index(), 2);
            let mut resumed = restore_engine(&ck).unwrap();
            assert_eq!(resumed.descriptor().algo, algo);
            for _ in 0..4 {
                resumed.sweep();
            }
            assert_eq!(resumed.sweep_index(), reference.sweep_index(), "{algo}");
            assert_eq!(resumed.observe(), reference.observe(), "{algo}");
            let (a, b) = (resumed.replica_observations(), reference.replica_observations());
            assert_eq!(a, b, "{algo}: replica observations diverge after resume");
        }
    }

    #[test]
    fn bf16_engines_checkpoint_with_their_dtype() {
        for algo in [Algo::Naive, Algo::Compact, Algo::Conv] {
            let mut e = build_engine(&spec(algo, Dtype::Bf16)).unwrap();
            e.sweep();
            let ck = e.checkpoint().unwrap();
            let EngineCheckpoint::Scalar { snapshot, .. } = &ck else {
                panic!("scalar snapshot expected");
            };
            assert_eq!(snapshot.dtype, "bf16");
            let mut r = restore_engine(&ck).unwrap();
            r.sweep();
            e.sweep();
            assert_eq!(r.observe(), e.observe(), "{algo}");
        }
    }

    #[test]
    fn wolff_steps_whole_sweeps_on_black_only() {
        let mut a = build_engine(&spec(Algo::Wolff, Dtype::F32)).unwrap();
        let mut b = build_engine(&spec(Algo::Wolff, Dtype::F32)).unwrap();
        a.step(Color::Black);
        a.step(Color::White);
        b.sweep();
        assert_eq!(a.observe(), b.observe());
        assert!(a.checkpoint().is_none());
    }

    #[test]
    fn multispin_sweeper_pools_replica_means() {
        let mut e = MultiSpinIsing::new(8, 8, 0.4, 5);
        Sweeper::sweep(&mut e);
        let mags = e.replica_magnetizations();
        let mean = mags.iter().sum::<f64>() / REPLICAS as f64;
        assert_eq!(Sweeper::magnetization_sum(&e), mean);
        assert_eq!(Engine::flips_per_sweep(&e), 64 * 64);
        assert_eq!(e.replica_observations().len(), REPLICAS);
    }

    #[test]
    fn scalar_visitor_reaches_every_mesh_cell() {
        struct NameOf;
        impl ScalarEngineVisitor for NameOf {
            type Out = (Algo, &'static str);
            fn visit<S, E>(self) -> (Algo, &'static str)
            where
                S: Scalar + RandomUniform + 'static,
                E: ScalarMeshEngine<S> + Send + 'static,
            {
                (E::ALGO, S::DTYPE)
            }
        }
        for algo in [Algo::Naive, Algo::Compact, Algo::Conv] {
            assert_eq!(with_scalar_engine(algo, Dtype::F32, NameOf).unwrap(), (algo, "f32"));
            assert_eq!(with_scalar_engine(algo, Dtype::Bf16, NameOf).unwrap(), (algo, "bf16"));
        }
        assert!(with_scalar_engine(Algo::Wolff, Dtype::F32, NameOf).is_err());
        assert!(with_scalar_engine(Algo::Multispin, Dtype::F32, NameOf).is_err());
        assert!(with_scalar_engine(Algo::Compact, Dtype::Packed, NameOf).is_err());
    }

    #[test]
    fn mesh_core_self_wrap_matches_local_update() {
        // A single-core "mesh" run through the MeshCore surface: halos
        // shifted on a 1×1 torus are the engine's own opposite edges, so
        // the trajectory must equal the plain local update.
        fn check<E: ScalarMeshEngine<f32>>(mut mesh: E, mut local: E) {
            for _ in 0..3 {
                for color in [Color::Black, Color::White] {
                    let spec = MeshCore::halo_exchange_spec(&mesh, color);
                    // On a 1×1 torus every shift returns the payload it
                    // sent, delivered into the same slot.
                    let received = spec.map(|(payload, _dir)| payload);
                    let halos = mesh.assemble_halos(color, received);
                    mesh.update_color_with(color, &halos);
                }
                MeshCore::advance_sweep(&mut mesh);
                Sweeper::sweep(&mut local);
                assert_eq!(mesh.to_plane(), local.to_plane());
            }
        }
        let init = random_plane::<f32>(3, 8, 8);
        let rng = || Randomness::site_keyed(11);
        let be = KernelBackend::Band;
        check(
            CompactIsing::from_plane_at_backend(&init, 2, 0.44, rng(), 0, 0, be),
            CompactIsing::from_plane_at_backend(&init, 2, 0.44, rng(), 0, 0, be),
        );
        check(
            NaiveIsing::from_plane_at_backend(&init, 2, 0.44, rng(), 0, 0, be),
            NaiveIsing::from_plane_at_backend(&init, 2, 0.44, rng(), 0, 0, be),
        );
        check(
            ConvIsing::from_plane_at_backend(&init, 2, 0.44, rng(), 0, 0, be),
            ConvIsing::from_plane_at_backend(&init, 2, 0.44, rng(), 0, 0, be),
        );
    }

    #[test]
    fn mesh_snapshots_restore_through_the_engine_path() {
        // ScalarMeshEngine::snapshot → EngineCheckpoint::Scalar →
        // restore_engine round-trips for each mesh-capable scalar algo.
        fn check<E: ScalarMeshEngine<f32>>(algo: Algo) {
            let init = random_plane::<f32>(7, 8, 8);
            let mut sim = E::from_plane_at_backend(
                &init,
                2,
                0.5,
                Randomness::site_keyed(7),
                0,
                0,
                KernelBackend::Band,
            );
            for _ in 0..2 {
                Sweeper::sweep(&mut sim);
            }
            let snapshot = MeshCore::snapshot(&sim, 2);
            let ck = EngineCheckpoint::Scalar { algo, snapshot };
            let mut restored = restore_engine(&ck).unwrap();
            Sweeper::sweep(&mut sim);
            restored.sweep();
            assert_eq!(restored.observe().magnetization, Sweeper::magnetization_sum(&sim));
        }
        check::<CompactIsing<f32>>(Algo::Compact);
        check::<NaiveIsing<f32>>(Algo::Naive);
        check::<ConvIsing<f32>>(Algo::Conv);
    }
}
