//! Persistent tile-distributing worker pool for the multi-spin sweep.
//!
//! rayon's scope machinery heap-allocates a little on every parallel
//! invocation (task queues, scope latches), which is why the multi-spin
//! engine used to fall back to a plain loop to keep its measured steady
//! state at 0 B/sweep. This pool removes the trade-off: workers are
//! spawned once and parked on a condvar, a half-sweep publishes one
//! type-erased closure reference plus a tile count, and the workers and
//! the submitting thread drain tiles from a shared atomic counter.
//! Nothing on the dispatch path allocates — epoch bump, `notify_all`,
//! `fetch_add` — so the counting-allocator test passes with the parallel
//! path fully enabled.
//!
//! Tiles are claimed dynamically (one `fetch_add` each), so row tiles
//! whose words hit the far Bernoulli tail don't stall a static partition.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use tpu_ising_obs as obs;

/// Environment variable overriding the pool's total worker count
/// (including the submitting thread); unset → `available_parallelism`.
/// Invalid values follow the workspace env fallback rule
/// (`tpu_ising_rng::envcfg`): warn and use the default.
pub const WORKERS_ENV: &str = "TPU_ISING_SWEEP_WORKERS";

/// The tile job the pool is currently running, plus the handshake state.
struct Slot {
    /// Bumped once per `run`; workers pick up a job when the epoch moves.
    epoch: u64,
    /// The submitted closure, lifetime-erased. Only valid between the
    /// epoch bump and the matching `finished == workers` handshake, which
    /// `run` enforces by not returning until every worker checked in.
    job: Option<&'static (dyn Fn(usize) + Sync)>,
    n_tiles: usize,
    /// Workers that finished the current epoch.
    finished: usize,
}

/// A fixed set of helper threads that execute `f(tile)` for every tile of
/// a half-sweep. See the module docs for the zero-allocation rationale.
pub struct SweepPool {
    /// Helper threads actually running (the submitting thread
    /// participates too, so total parallelism is `workers + 1`). Written
    /// once at the end of [`SweepPool::spawn`] — it may be smaller than
    /// the requested count when thread spawning fails — and read by the
    /// `finished == workers` handshake, which therefore never waits for
    /// a worker that does not exist.
    workers: AtomicUsize,
    slot: Mutex<Slot>,
    work_cv: Condvar,
    done_cv: Condvar,
    /// Next unclaimed tile of the current epoch.
    next: AtomicUsize,
    /// Serializes concurrent `run` calls: the pool runs one job at a
    /// time, and a caller that finds it busy (e.g. another mesh core
    /// mid-sweep) just runs its tiles inline instead of queueing.
    busy: Mutex<()>,
}

fn relock<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(PoisonError::into_inner)
}

impl SweepPool {
    /// Spawn a pool with up to `helpers` worker threads (0 = inline
    /// execution only). The pool is leaked: workers live for the process,
    /// which is exactly the persistence that makes dispatch
    /// allocation-free.
    ///
    /// Thread-spawn failure (fd/thread exhaustion, tight cgroup limits)
    /// is *degradation, not death*: the pool keeps whatever helpers did
    /// start — possibly none, which is the plain sequential sweep path —
    /// warns once, and bumps the `sweep_pool_spawn_failures_total`
    /// counter so the shortfall is visible in `--metrics` output.
    pub fn spawn(helpers: usize) -> &'static SweepPool {
        let pool: &'static SweepPool = Box::leak(Box::new(SweepPool {
            workers: AtomicUsize::new(0),
            slot: Mutex::new(Slot { epoch: 0, job: None, n_tiles: 0, finished: 0 }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            next: AtomicUsize::new(0),
            busy: Mutex::new(()),
        }));
        let mut spawned = 0usize;
        for w in 0..helpers {
            match std::thread::Builder::new()
                .name(format!("ms-sweep-{w}"))
                .spawn(move || pool.worker_loop())
            {
                Ok(_) => spawned += 1,
                Err(e) => {
                    obs::metrics().counter("sweep_pool_spawn_failures_total").inc(1);
                    eprintln!(
                        "warning: could not spawn sweep worker {w} of {helpers}: {e}; \
                         continuing with {spawned} helper(s){}",
                        if spawned == 0 { " (sequential sweeps)" } else { "" }
                    );
                    // Spawn failures mean the process is resource-starved;
                    // asking for the remaining threads would likely fail
                    // the same way.
                    break;
                }
            }
        }
        // No job is published until `spawn` returns, so workers are still
        // parked on the condvar when the final count lands: the
        // `finished == workers` handshake only ever sees this value.
        pool.workers.store(spawned, Ordering::Release);
        pool
    }

    /// Helper threads actually running in this pool (may be fewer than
    /// requested if spawning failed).
    pub fn helpers(&self) -> usize {
        self.workers.load(Ordering::Acquire)
    }

    fn worker_loop(&self) {
        let mut seen = 0u64;
        let mut guard = relock(self.slot.lock());
        loop {
            if guard.epoch == seen {
                guard = relock(self.work_cv.wait(guard));
                continue;
            }
            seen = guard.epoch;
            let job = guard.job;
            let n = guard.n_tiles;
            drop(guard);
            if let Some(f) = job {
                loop {
                    let t = self.next.fetch_add(1, Ordering::Relaxed);
                    if t >= n {
                        break;
                    }
                    f(t);
                }
            }
            guard = relock(self.slot.lock());
            guard.finished += 1;
            if guard.finished == self.helpers() {
                self.done_cv.notify_one();
            }
        }
    }

    /// Run `f(0)..f(n_tiles - 1)` across the helpers and the calling
    /// thread; returns once every tile completed and every helper has
    /// quiesced. Tiles must be independent (`f` is `Sync` and invoked
    /// concurrently). Falls back to a plain inline loop when the pool has
    /// no helpers or another thread is mid-`run`.
    pub fn run(&self, n_tiles: usize, f: &(dyn Fn(usize) + Sync)) {
        let workers = self.helpers();
        if workers == 0 || n_tiles <= 1 {
            for t in 0..n_tiles {
                f(t);
            }
            return;
        }
        let Ok(_busy) = self.busy.try_lock() else {
            for t in 0..n_tiles {
                f(t);
            }
            return;
        };
        // SAFETY: the 'static is a lie the handshake makes true — `run`
        // does not return until every helper bumped `finished`, i.e. no
        // helper holds the reference once the real lifetime ends.
        let job: &'static (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(f) };
        {
            let mut guard = relock(self.slot.lock());
            self.next.store(0, Ordering::Relaxed);
            guard.epoch = guard.epoch.wrapping_add(1);
            guard.job = Some(job);
            guard.n_tiles = n_tiles;
            guard.finished = 0;
            self.work_cv.notify_all();
        }
        loop {
            let t = self.next.fetch_add(1, Ordering::Relaxed);
            if t >= n_tiles {
                break;
            }
            f(t);
        }
        let mut guard = relock(self.slot.lock());
        while guard.finished < workers {
            guard = relock(self.done_cv.wait(guard));
        }
        guard.job = None;
    }
}

/// The process-wide sweep pool: `available_parallelism − 1` helpers (the
/// submitting thread is the final lane), overridable with [`WORKERS_ENV`].
/// Spawned lazily on the first parallel half-sweep.
pub fn pool() -> &'static SweepPool {
    static POOL: OnceLock<&'static SweepPool> = OnceLock::new();
    POOL.get_or_init(|| {
        let total = tpu_ising_rng::envcfg::env_usize(WORKERS_ENV, 1)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        SweepPool::spawn(total.saturating_sub(1))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn covers_every_tile_exactly_once() {
        let pool = SweepPool::spawn(3);
        for n in [0usize, 1, 2, 7, 64, 257] {
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            pool.run(n, &|t| {
                hits[t].fetch_add(1, Ordering::Relaxed);
            });
            for (t, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "tile {t} of {n}");
            }
        }
    }

    #[test]
    fn back_to_back_runs_reuse_the_pool() {
        let pool = SweepPool::spawn(2);
        let sum = AtomicU64::new(0);
        for _ in 0..200 {
            pool.run(16, &|t| {
                sum.fetch_add(t as u64, Ordering::Relaxed);
            });
        }
        assert_eq!(sum.load(Ordering::Relaxed), 200 * (0..16).sum::<u64>());
    }

    #[test]
    fn helpers_reports_spawned_count() {
        // A pool never claims more helpers than it actually spawned; the
        // handshake math in `run` relies on this.
        let pool = SweepPool::spawn(2);
        assert!(pool.helpers() <= 2);
        let sum = AtomicU64::new(0);
        pool.run(5, &|t| {
            sum.fetch_add(t as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn zero_helper_pool_runs_inline() {
        let pool = SweepPool::spawn(0);
        let sum = AtomicU64::new(0);
        pool.run(9, &|t| {
            sum.fetch_add(t as u64 + 1, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 45);
    }

    #[test]
    fn concurrent_submitters_fall_back_inline_without_deadlock() {
        let pool = SweepPool::spawn(2);
        let total = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..50 {
                        pool.run(8, &|t| {
                            total.fetch_add(t as u64, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * 50 * (0..8).sum::<u64>());
    }
}
