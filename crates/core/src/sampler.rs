//! The Markov-chain driver: burn-in, sampling, summary statistics.

use crate::observables::{Accumulator, Stats};
use tpu_ising_obs as obs;

/// Anything that can advance the Markov chain by one full sweep
/// (black update + white update) and report extensive observables.
pub trait Sweeper {
    /// One full-lattice sweep: update all black spins, then all white.
    fn sweep(&mut self);
    /// Number of lattice sites `N`.
    fn sites(&self) -> usize;
    /// `Σᵢ σᵢ` over the lattice.
    fn magnetization_sum(&self) -> f64;
    /// `H(σ) = −Σ_bonds σᵢσⱼ`.
    fn energy_sum(&self) -> f64;
}

/// Summary of a finished chain (per-site observables).
pub type ChainStats = Stats;

/// Run `burn_in` discarded sweeps followed by `samples` measured sweeps,
/// measuring after every sweep — the protocol of the paper's Fig. 4
/// ("a Markov Chain of 1,000,000 samples ... the first 100,000 discarded
/// for burn-in").
pub fn run_chain<W: Sweeper>(sweeper: &mut W, burn_in: usize, samples: usize) -> ChainStats {
    run_chain_labeled(sweeper, burn_in, samples, "chain")
}

/// [`run_chain`] with a label used for progress heartbeats (e.g.
/// `"fig4 L=64 T=2.27"`). Emits one heartbeat tick per sweep and counts
/// sweeps into the `sweeps_total` metric when metrics are enabled.
pub fn run_chain_labeled<W: Sweeper>(
    sweeper: &mut W,
    burn_in: usize,
    samples: usize,
    label: &str,
) -> ChainStats {
    let n = sweeper.sites() as f64;
    let mut hb = obs::Heartbeat::new(label, (burn_in + samples) as u64).with_flips_per_sweep(n);
    {
        let _g = obs::span!("burn_in");
        for _ in 0..burn_in {
            sweeper.sweep();
            hb.tick();
        }
    }
    let mut acc = Accumulator::new();
    {
        let _g = obs::span!("measure");
        for _ in 0..samples {
            sweeper.sweep();
            acc.push(sweeper.magnetization_sum() / n, sweeper.energy_sum() / n);
            hb.tick();
        }
    }
    hb.finish();
    if obs::is_metrics() {
        obs::metrics().counter("sweeps_total").inc((burn_in + samples) as u64);
    }
    acc.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic fake sweeper cycling through fixed magnetizations.
    struct Fake {
        step: usize,
        ms: Vec<f64>,
    }

    impl Sweeper for Fake {
        fn sweep(&mut self) {
            self.step += 1;
        }
        fn sites(&self) -> usize {
            4
        }
        fn magnetization_sum(&self) -> f64 {
            self.ms[self.step % self.ms.len()] * 4.0
        }
        fn energy_sum(&self) -> f64 {
            -8.0
        }
    }

    #[test]
    fn chain_skips_burn_in() {
        // ms cycle: step counts 1.. after sweeps; with burn_in 2, samples
        // start at step 3.
        let mut f = Fake { step: 0, ms: vec![0.0, 10.0, 10.0, 0.5, -0.5, 0.5, -0.5, 0.5] };
        let stats = run_chain(&mut f, 2, 4);
        assert_eq!(stats.samples, 4);
        // steps 3,4,5,6 → 0.5, −0.5, 0.5, −0.5
        assert!((stats.mean_abs_m - 0.5).abs() < 1e-12);
        assert!((stats.mean_m2 - 0.25).abs() < 1e-12);
        assert!((stats.mean_energy + 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_samples_is_safe() {
        let mut f = Fake { step: 0, ms: vec![1.0] };
        let stats = run_chain(&mut f, 0, 0);
        assert_eq!(stats.samples, 0);
    }
}
