//! Production bit-packed multi-spin sweep engine: 64 replicas per word.
//!
//! The fast path of the repository. Every `u64` word holds the same lattice
//! site of **64 independent replicas** (bit `k` = spin of replica `k`,
//! 1 = up), and one checkerboard color update costs a handful of bitwise
//! instructions per word:
//!
//! - neighbor alignment indicators by XNOR,
//! - the alignment count by a bitwise full-adder tree,
//! - both temperature-dependent acceptance masks (`p₄ = e^{−8β}` for
//!   σ·nn = 4, `p₂ = e^{−4β}` for σ·nn = 2) from **one shared set** of
//!   bit-sliced Bernoulli planes ([`bernoulli_masks_dual`]) — exact,
//!   because the neighborhood decides which threshold a lane consumes.
//!
//! Unlike the reference toy in `tpu-ising-baseline`, this engine is built
//! for production:
//!
//! - **Site-keyed randomness, always.** Every Bernoulli plane is a pure
//!   Philox function of `(seed, sweep, color, global row, global col,
//!   plane index)` — no stream state. Sweeps parallelize freely, a
//!   distributed run is bit-identical to the single-core run, checkpoints
//!   carry only the seed, and a snapshot reshapes onto any torus.
//! - **Zero steady-state allocation.** Storage is split by site color into
//!   two word arrays, so the color update is a safe in-place walk (mutate
//!   one array, read the other) — no temporary lattice. Rows are grouped
//!   into cache-blocked tiles ([`MultiSpinIsing::tile_rows`]) distributed
//!   over the persistent [`crate::sweep_pool`], whose dispatch path does
//!   not allocate — the 0 B/sweep steady state holds with the parallel
//!   path fully enabled.
//! - **Runtime-dispatched SIMD.** The Bernoulli comparison trees and the
//!   Philox plane batches select scalar/SSE2/AVX2/AVX-512 kernels once at
//!   startup ([`tpu_ising_rng::simd`]); every tier is bit-identical, so
//!   the trajectory is independent of the host's vector width.
//! - **Packed halo exchange.** On the SPMD mesh the four boundary halos of
//!   a half-sweep travel as packed words: `(w + h)/2 + 2·(w/2)` words per
//!   core per color carry 64 replicas' worth of boundary — 32× fewer halo
//!   bytes than one f32 lattice per replica. Counted in the shared
//!   `halo_bytes_total` metric.
//! - **Per-replica observables.** `replica_magnetizations` returns the 64
//!   independent `Σσ` values, so one run yields 64 magnetization/Binder
//!   chains (the paper's Fig. 4 statistics) with honest cross-replica
//!   error bars.
//!
//! The pod layer ([`run_multispin_pod_resilient`]) mirrors the compact
//! sweeper's fault-tolerance discipline: per-core [`MultiSpinCheckpoint`]s
//! land in a shared store, crashes resume from the latest complete
//! snapshot, and a killed-and-resumed run reproduces the uninterrupted
//! trajectory bit-exactly.

use crate::distributed::{PodError, ResilienceOpts};
use crate::lattice::Color;
use crate::sweep_pool;
use crate::vault::Vault;
use serde::{Deserialize, Serialize};
use tpu_ising_device::mesh::{
    run_mesh, Collectives, CoreProgram, Dir, MeshConfig, MeshError, Torus,
};
use tpu_ising_obs as obs;
use tpu_ising_rng::bitsliced::{
    expand, tree_feed, DualMaskBuilder, ScalarTree, TreeFeedKernel, BERNOULLI_BITS,
};
#[cfg(target_arch = "x86_64")]
use tpu_ising_rng::bitsliced::{Avx2Tree, Avx512Tree, Sse2Tree};
#[cfg(target_arch = "x86_64")]
use tpu_ising_rng::SimdIsa;
use tpu_ising_rng::{
    philox4x32_10, philox4x32_10_planes16, philox4x32_10_planes8_x2, Philox4x32Key, PHILOX_BATCH,
};

/// Replicas per packed word.
pub const REPLICAS: usize = 64;

/// Domain-separation tags for the hot-start counter (bits 28–30 of the
/// fourth counter word are always zero in sweep counters, so init draws
/// can never collide with acceptance planes).
const INIT_C2: u32 = 0x1513_B10C;
const INIT_C3: u32 = 0x7000_0000;

/// The site-keyed hot-start word for global site `(gr, gc)`: 64 i.i.d.
/// fair coins, identical however the lattice is sharded.
#[inline]
fn init_word(key: Philox4x32Key, gr: u32, gc: u32) -> u64 {
    let o = philox4x32_10([gr, gc, INIT_C2, INIT_C3], key);
    ((o[1] as u64) << 32) | o[0] as u64
}

/// Fill `buf[..2 * CALLS]` with the planes of Philox blocks
/// `block0 .. block0 + CALLS` (two 64-bit planes per block). The const
/// generic fully unrolls the loop so the independent 10-round Philox
/// chains interleave in the pipeline instead of running back to back.
#[inline]
fn refill<const CALLS: usize>(buf: &mut [u64; 8], ctr: [u32; 4], block0: u32, key: Philox4x32Key) {
    for i in 0..CALLS {
        let o = philox4x32_10([ctr[0], ctr[1], ctr[2], ctr[3] | ((block0 + i as u32) << 24)], key);
        buf[2 * i] = ((o[1] as u64) << 32) | o[0] as u64;
        buf[2 * i + 1] = ((o[3] as u64) << 32) | o[2] as u64;
    }
}

/// Shared, read-only context of one color half-sweep, borrowed by every
/// row tile. Collecting the captures in a named struct (instead of a
/// closure environment) lets the row loop be a *generic function*,
/// monomorphized once per SIMD tier: inside the matching
/// `#[target_feature]` tile runner the tree-feed kernels inline into the
/// loop, the comparison state stays in registers, and the threshold
/// vectors hoist out of the per-word path — a function-pointer feed per
/// word costs ~25 % of the sweep.
struct ColorSweep<'a> {
    h: usize,
    w2: usize,
    row0: usize,
    col0: usize,
    /// Color tag (0 = black, 1 = white).
    p: usize,
    tile_rows: usize,
    p4_bits: [bool; BERNOULLI_BITS as usize],
    p2_bits: [bool; BERNOULLI_BITS as usize],
    key: Philox4x32Key,
    sweep_lo: u32,
    c3_base: u32,
    /// The opposite-color array (read-only this half-sweep).
    other: &'a [u64],
    halos: Option<&'a PackedHalos>,
    track: bool,
    accepted: &'a std::sync::atomic::AtomicU64,
}

/// The mutable base of the current-color array, smuggled across the sweep
/// pool. Tiles cover disjoint row ranges, so concurrent tile invocations
/// never alias a row.
struct SendPtr(*mut u64);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}
impl SendPtr {
    fn get(&self) -> *mut u64 {
        self.0
    }
}

impl ColorSweep<'_> {
    /// Resolve one site's accept word from its first eight Bernoulli
    /// planes (Philox blocks 0..4); escalates through blocks 4..8 and
    /// then scalar pairs up to the full 24-bit resolution. Plane i
    /// always comes from block i/2, so the masks are bit-identical
    /// however the first eight planes were batched.
    ///
    /// # Safety
    /// The CPU must support `K::ISA`.
    #[inline(always)]
    unsafe fn resolve8<K: TreeFeedKernel>(
        &self,
        ctr: [u32; 4],
        e3: u64,
        e4: u64,
        planes8: &[u64; 8],
    ) -> u64 {
        let mut b = DualMaskBuilder::new();
        K::feed8(&mut b, &self.p2_bits, &self.p4_bits, planes8);
        if b.undecided(e3, e4) {
            let mut buf = [0u64; 8];
            refill::<4>(&mut buf, ctr, 4, self.key);
            K::feed8(&mut b, &self.p2_bits, &self.p4_bits, &buf);
            let mut block: u32 = PHILOX_BATCH as u32;
            while b.undecided(e3, e4) && b.planes_used() < BERNOULLI_BITS as usize {
                refill::<2>(&mut buf, ctr, block, self.key);
                b.feed(&self.p2_bits, &self.p4_bits, &buf[..4]);
                block += 2;
            }
        }
        let (m2, m4) = b.masks();
        !(e4 | e3) | (e4 & m4) | (e3 & m2)
    }

    /// The unpaired-site path: one batch yields sixteen planes
    /// (blocks 0..8) with the second tree fold short-circuited.
    ///
    /// # Safety
    /// The CPU must support `K::ISA`.
    #[inline(always)]
    unsafe fn resolve16<K: TreeFeedKernel>(&self, ctr: [u32; 4], e3: u64, e4: u64) -> u64 {
        let planes = philox4x32_10_planes16(ctr, 0, self.key);
        let mut b = DualMaskBuilder::new();
        K::feed16(&mut b, &self.p2_bits, &self.p4_bits, &planes, e3, e4);
        let mut buf = [0u64; 8];
        let mut block: u32 = PHILOX_BATCH as u32;
        while b.undecided(e3, e4) && b.planes_used() < BERNOULLI_BITS as usize {
            refill::<2>(&mut buf, ctr, block, self.key);
            b.feed(&self.p2_bits, &self.p4_bits, &buf[..4]);
            block += 2;
        }
        let (m2, m4) = b.masks();
        !(e4 | e3) | (e4 & m4) | (e3 & m2)
    }

    /// Update every word of packed row `r` in place.
    ///
    /// # Safety
    /// The CPU must support `K::ISA`.
    #[inline(always)]
    unsafe fn do_row<K: TreeFeedKernel>(&self, r: usize, row: &mut [u64]) {
        let (h, w2) = (self.h, self.w2);
        let other = self.other;
        let up_r = if r == 0 { h - 1 } else { r - 1 };
        let down_r = if r + 1 == h { 0 } else { r + 1 };
        let up: &[u64] = match (r, self.halos) {
            (0, Some(hl)) => &hl.north,
            _ => &other[up_r * w2..(up_r + 1) * w2],
        };
        let down: &[u64] = match self.halos {
            Some(hl) if r + 1 == h => &hl.south,
            _ => &other[down_r * w2..(down_r + 1) * w2],
        };
        let same: &[u64] = &other[r * w2..(r + 1) * w2];
        let s_off = (self.p + r) % 2;
        // Only one lateral wrap word is consumed per row: the west
        // neighbor of the first updated column (s_off == 0) or the
        // east neighbor of the last one (s_off == 1).
        let west_wrap =
            if s_off == 0 { self.halos.map_or(same[w2 - 1], |hl| hl.west[r / 2]) } else { 0 };
        let east_wrap =
            if s_off == 1 { self.halos.map_or(same[0], |hl| hl.east[r / 2]) } else { 0 };
        let gr = (self.row0 + r) as u32;
        // Neighborhood classification for word j: XNOR alignment
        // indicators folded through a bitwise full adder into the
        // exactly-4 / exactly-3 lane masks (σ·nn = 4 / 2, thresholds
        // p4 / p2; aligned ≤ 2 always accepts).
        let classify = |j: usize, s: u64| -> (u64, u64) {
            let (left, right) = if s_off == 1 {
                (same[j], if j + 1 == w2 { east_wrap } else { same[j + 1] })
            } else {
                (if j == 0 { west_wrap } else { same[j - 1] }, same[j])
            };
            // alignment indicators
            let x1 = !(s ^ up[j]);
            let x2 = !(s ^ down[j]);
            let x3 = !(s ^ left);
            let x4 = !(s ^ right);
            // full-adder tree: count = x1+x2+x3+x4 as (c2, s1, s0)
            let (s0a, c0a) = (x1 ^ x2, x1 & x2);
            let (s0b, c0b) = (x3 ^ x4, x3 & x4);
            let s0 = s0a ^ s0b;
            let c1 = s0a & s0b;
            let s1 = c0a ^ c0b ^ c1;
            let c2 = (c0a & c0b) | (c1 & (c0a ^ c0b));
            (s1 & s0, c2) // (exactly3, exactly4)
        };
        let mut row_accepted = 0u64;
        // Counter-addressed planes: pure functions of (seed, sweep,
        // color, global coords, plane block), so draws batch freely
        // without changing the masks. Words whose every lane
        // auto-accepts (aligned ≤ 2) flip immediately; a word that
        // needs Bernoulli masks waits for a partner so one 8-lane
        // Philox batch serves *two* sites — eight planes (expected
        // demand ~log₂(lanes) + 2) decide a word ~75 % of the time,
        // so pairing nearly halves the RNG cost of the row against
        // one 16-plane batch per site. Deferring the partner's write
        // is safe: same-color words never read each other within a
        // half-sweep (every neighbor is the opposite color).
        let mut pending: Option<(usize, u64, u64, u64)> = None;
        for j in 0..w2 {
            let s = row[j];
            let (exactly3, exactly4) = classify(j, s);
            if exactly4 | exactly3 == 0 {
                if self.track {
                    row_accepted += REPLICAS as u64;
                }
                row[j] = !s;
                continue;
            }
            let ctr = [gr, (self.col0 + 2 * j + s_off) as u32, self.sweep_lo, self.c3_base];
            match pending.take() {
                None => pending = Some((j, s, exactly3, exactly4)),
                Some((ja, sa, e3a, e4a)) => {
                    let ctr_a =
                        [gr, (self.col0 + 2 * ja + s_off) as u32, self.sweep_lo, self.c3_base];
                    let (pa, pb) = philox4x32_10_planes8_x2(ctr_a, ctr, 0, self.key);
                    let acc_a = self.resolve8::<K>(ctr_a, e3a, e4a, &pa);
                    let acc_b = self.resolve8::<K>(ctr, exactly3, exactly4, &pb);
                    if self.track {
                        row_accepted += (acc_a.count_ones() + acc_b.count_ones()) as u64;
                    }
                    row[ja] = sa ^ acc_a;
                    row[j] = s ^ acc_b;
                }
            }
        }
        if let Some((j, s, e3, e4)) = pending {
            let ctr = [gr, (self.col0 + 2 * j + s_off) as u32, self.sweep_lo, self.c3_base];
            let acc = self.resolve16::<K>(ctr, e3, e4);
            if self.track {
                row_accepted += acc.count_ones() as u64;
            }
            row[j] = s ^ acc;
        }
        if self.track {
            self.accepted.fetch_add(row_accepted, std::sync::atomic::Ordering::Relaxed);
        }
    }
}

/// Run tile `t` (rows `t·tile_rows ..`) through the `K` row kernel.
///
/// # Safety
/// The CPU must support `K::ISA`, and tiles must partition the rows (the
/// sweep pool guarantees each `t` is claimed exactly once).
#[inline(always)]
unsafe fn run_tile_generic<K: TreeFeedKernel>(cs: &ColorSweep, base: &SendPtr, t: usize) {
    let r_begin = t * cs.tile_rows;
    let r_end = (r_begin + cs.tile_rows).min(cs.h);
    for r in r_begin..r_end {
        // SAFETY: tiles cover disjoint row ranges, so no two invocations
        // alias a row, and the array outlives the pool.run call, which
        // joins every worker before returning.
        let row = unsafe { std::slice::from_raw_parts_mut(base.get().add(r * cs.w2), cs.w2) };
        cs.do_row::<K>(r, row);
    }
}

fn run_tile_scalar(cs: &ColorSweep, base: &SendPtr, t: usize) {
    // SAFETY: the portable tier runs anywhere.
    unsafe { run_tile_generic::<ScalarTree>(cs, base, t) }
}

#[cfg(target_arch = "x86_64")]
fn run_tile_sse2(cs: &ColorSweep, base: &SendPtr, t: usize) {
    // SAFETY: SSE2 is baseline on x86_64.
    unsafe { run_tile_generic::<Sse2Tree>(cs, base, t) }
}

/// The whole tile loop under one `target_feature` so LLVM inlines the
/// AVX2 tree kernels into the row loop (a `target_feature` function only
/// inlines into callers that enable the same features).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn run_tile_avx2(cs: &ColorSweep, base: &SendPtr, t: usize) {
    run_tile_generic::<Avx2Tree>(cs, base, t)
}

#[cfg(target_arch = "x86_64")]
fn run_tile_avx2_entry(cs: &ColorSweep, base: &SendPtr, t: usize) {
    // SAFETY: selected only when the dispatched tier is AVX2, which
    // `simd::isa` clamps to the features the host actually has.
    unsafe { run_tile_avx2(cs, base, t) }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl")]
unsafe fn run_tile_avx512(cs: &ColorSweep, base: &SendPtr, t: usize) {
    run_tile_generic::<Avx512Tree>(cs, base, t)
}

#[cfg(target_arch = "x86_64")]
fn run_tile_avx512_entry(cs: &ColorSweep, base: &SendPtr, t: usize) {
    // SAFETY: selected only when the dispatched tier is AVX-512.
    unsafe { run_tile_avx512(cs, base, t) }
}

/// Cross-core boundary words consumed by one color update, all of the
/// *opposite* color. `west`/`east` are indexed by `row / 2` and cover only
/// the rows whose boundary site has the opposite color (half the rows
/// each); `north`/`south` are full packed rows (`width/2` words).
#[derive(Clone, Debug)]
pub struct PackedHalos {
    /// Global row `row0 − 1`, word-column order.
    pub north: Vec<u64>,
    /// Global row `row0 + height`.
    pub south: Vec<u64>,
    /// Global column `col0 − 1`, rows `r ≡ color (mod 2)`, indexed `r/2`.
    pub west: Vec<u64>,
    /// Global column `col0 + width`, rows `r ≢ color (mod 2)`, indexed `r/2`.
    pub east: Vec<u64>,
}

/// 64 replicas of a periodic Ising lattice, one bit per replica, stored as
/// two color-split word arrays (`height × width/2` each).
pub struct MultiSpinIsing {
    /// Words of even-parity sites: `(r + c) % 2 == 0`, row-major over
    /// `(r, j)` with `c = 2j + (r % 2)`.
    black: Vec<u64>,
    /// Words of odd-parity sites, `c = 2j + (r + 1) % 2`.
    white: Vec<u64>,
    height: usize,
    width: usize,
    beta: f64,
    seed: u64,
    key: Philox4x32Key,
    /// Global offset of this window (both even; 0 on a single core).
    row0: usize,
    col0: usize,
    sweep_index: u64,
    p4_bits: [bool; BERNOULLI_BITS as usize],
    p2_bits: [bool; BERNOULLI_BITS as usize],
    /// Explicit cache-block tile height; `None` = env override or the
    /// measured default. Never affects the trajectory, only scheduling.
    tile_rows: Option<usize>,
}

/// Environment variable overriding the cache-block tile height (rows per
/// parallel work unit) for engines without an explicit
/// [`MultiSpinIsing::set_tile_rows`]: `TPU_ISING_TILE_ROWS=N`, `N ≥ 1`.
/// Invalid values follow the workspace env fallback rule
/// (`tpu_ising_rng::envcfg`): warn and use the automatic default.
pub const TILE_ROWS_ENV: &str = "TPU_ISING_TILE_ROWS";

/// The env override, read once (re-reading per half-sweep would allocate).
fn tile_rows_override() -> Option<usize> {
    static V: std::sync::OnceLock<Option<usize>> = std::sync::OnceLock::new();
    *V.get_or_init(|| tpu_ising_rng::envcfg::env_usize(TILE_ROWS_ENV, 1))
}

/// Default cache-block height for packed rows of `w2` words. A tile's
/// working set streams ~3 words per updated word (the row itself plus the
/// same/up/down opposite-color rows), so the height is sized to keep a
/// tile inside a 64 KiB block (L2-resident with room for Philox state);
/// measured on an AVX-512 Xeon at L = 256 the sweep is compute-bound and
/// flat within noise from 4 to 64 rows with a slight edge at 16–64, so
/// the cache bound is the only constraint that matters, clamped to keep
/// tiles coarse enough that the dynamic tile counter is not contended
/// (≥ 4 rows) and fine enough that uneven Bernoulli tails still balance
/// across pool helpers (≤ 64 rows).
pub fn default_tile_rows(w2: usize) -> usize {
    (64 * 1024 / (24 * w2.max(1))).clamp(4, 64)
}

impl MultiSpinIsing {
    /// `height × width` torus, 64 replicas, hot start from the seed.
    pub fn new(height: usize, width: usize, beta: f64, seed: u64) -> Self {
        Self::with_offset(height, width, beta, seed, 0, 0)
    }

    /// A window of a global lattice at offset `(row0, col0)`: the hot start
    /// is site-keyed, so every core of a pod constructs exactly its slice
    /// of the same global configuration.
    pub fn with_offset(
        height: usize,
        width: usize,
        beta: f64,
        seed: u64,
        row0: usize,
        col0: usize,
    ) -> Self {
        let key = Philox4x32Key::from_seed(seed);
        let mut s = Self::empty(height, width, beta, seed, row0, col0);
        for r in 0..height {
            for c in 0..width {
                let w = init_word(key, (row0 + r) as u32, (col0 + c) as u32);
                s.set_word(r, c, w);
            }
        }
        s
    }

    /// Rebuild a window from row-major packed words (one per site), e.g.
    /// from a checkpoint. `sweep_index` restores the RNG phase: site-keyed
    /// planes depend only on `(seed, sweep, coords)`, so this is the whole
    /// RNG state.
    #[allow(clippy::too_many_arguments)]
    pub fn from_words_at(
        words: &[u64],
        height: usize,
        width: usize,
        beta: f64,
        seed: u64,
        row0: usize,
        col0: usize,
        sweep_index: u64,
    ) -> Self {
        assert_eq!(words.len(), height * width, "word payload does not match the geometry");
        let mut s = Self::empty(height, width, beta, seed, row0, col0);
        s.sweep_index = sweep_index;
        for r in 0..height {
            for c in 0..width {
                s.set_word(r, c, words[r * width + c]);
            }
        }
        s
    }

    fn empty(height: usize, width: usize, beta: f64, seed: u64, row0: usize, col0: usize) -> Self {
        assert!(
            height.is_multiple_of(2) && width.is_multiple_of(2) && height >= 2 && width >= 2,
            "checkerboard needs even dimensions on a torus"
        );
        assert!(
            row0.is_multiple_of(2) && col0.is_multiple_of(2),
            "window offsets must be even so local and global parity agree"
        );
        let w2 = width / 2;
        let mut s = MultiSpinIsing {
            black: vec![0; height * w2],
            white: vec![0; height * w2],
            height,
            width,
            beta,
            seed,
            key: Philox4x32Key::from_seed(seed),
            row0,
            col0,
            sweep_index: 0,
            p4_bits: [false; BERNOULLI_BITS as usize],
            p2_bits: [false; BERNOULLI_BITS as usize],
            tile_rows: None,
        };
        s.rebuild_tables();
        s
    }

    fn rebuild_tables(&mut self) {
        self.p4_bits = expand((-8.0 * self.beta).exp());
        self.p2_bits = expand((-4.0 * self.beta).exp());
    }

    #[inline]
    fn set_word(&mut self, r: usize, c: usize, w: u64) {
        let idx = r * (self.width / 2) + (c >> 1);
        if (r + c).is_multiple_of(2) {
            self.black[idx] = w;
        } else {
            self.white[idx] = w;
        }
    }

    /// The packed word of site `(r, c)` (local coordinates).
    #[inline]
    pub fn word(&self, r: usize, c: usize) -> u64 {
        let idx = r * (self.width / 2) + (c >> 1);
        if (r + c).is_multiple_of(2) {
            self.black[idx]
        } else {
            self.white[idx]
        }
    }

    /// Lattice height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Lattice width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Inverse temperature.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Master seed (the entire RNG state under site keying).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Change β (rebuilds the acceptance expansions).
    pub fn set_beta(&mut self, beta: f64) {
        self.beta = beta;
        self.rebuild_tables();
    }

    /// Completed sweeps (the RNG phase).
    pub fn sweep_index(&self) -> u64 {
        self.sweep_index
    }

    /// Rows per parallel cache-block tile, resolved: the explicit
    /// [`Self::set_tile_rows`] value, else the [`TILE_ROWS_ENV`]
    /// override, else [`default_tile_rows`]. Scheduling only — the
    /// trajectory is bit-identical for every tile height.
    pub fn tile_rows(&self) -> usize {
        self.tile_rows
            .or_else(tile_rows_override)
            .unwrap_or_else(|| default_tile_rows(self.width / 2))
            .max(1)
    }

    /// Override the cache-block tile height; `None` (or 0) restores the
    /// automatic choice.
    pub fn set_tile_rows(&mut self, rows: Option<usize>) {
        self.tile_rows = rows.filter(|&n| n >= 1);
    }

    /// Sites per replica in this window.
    pub fn sites(&self) -> usize {
        self.height * self.width
    }

    /// Replica-spins proposed per sweep: `64 · height · width`.
    pub fn flips_per_sweep(&self) -> u64 {
        (REPLICAS * self.sites()) as u64
    }

    /// Spin of `(replica, row, col)` as ±1.
    pub fn spin(&self, replica: usize, r: usize, c: usize) -> i8 {
        debug_assert!(replica < REPLICAS);
        if (self.word(r, c) >> replica) & 1 == 1 {
            1
        } else {
            -1
        }
    }

    /// Replica `k` unpacked to a row-major ±1 configuration.
    pub fn replica_spins(&self, k: usize) -> Vec<i8> {
        assert!(k < REPLICAS);
        let mut out = vec![0i8; self.sites()];
        for r in 0..self.height {
            for c in 0..self.width {
                out[r * self.width + c] = self.spin(k, r, c);
            }
        }
        out
    }

    /// Per-replica magnetization sums `Σσ` over this window (length 64).
    pub fn replica_magnetizations(&self) -> [f64; REPLICAS] {
        let mut ups = [0u64; REPLICAS];
        for &w in self.black.iter().chain(self.white.iter()) {
            let mut m = w;
            while m != 0 {
                ups[m.trailing_zeros() as usize] += 1;
                m &= m - 1;
            }
        }
        let n = self.sites() as f64;
        let mut out = [0.0f64; REPLICAS];
        for (o, &u) in out.iter_mut().zip(ups.iter()) {
            *o = 2.0 * u as f64 - n;
        }
        out
    }

    /// Energy sum `−Σ_{⟨ij⟩} σᵢσⱼ` of replica `k` on this window treated
    /// as a torus (each right/down bond once; on side-2 geometries the
    /// wrap makes bonds doubled, matching what the update simulates).
    pub fn replica_energy(&self, k: usize) -> f64 {
        let (h, w) = (self.height, self.width);
        let bit = |r: usize, c: usize| (self.word(r, c) >> k) & 1;
        let mut aligned = 0i64;
        let bonds = (2 * h * w) as i64;
        for r in 0..h {
            for c in 0..w {
                let s = bit(r, c);
                aligned += (s == bit(r, (c + 1) % w)) as i64;
                aligned += (s == bit((r + 1) % h, c)) as i64;
            }
        }
        // aligned bonds contribute −1, anti-aligned +1
        (bonds - 2 * aligned) as f64
    }

    /// The packed configuration as row-major words, one per site — the
    /// checkpoint payload, and the sharding-independent global raster.
    pub fn to_words(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.sites()];
        for r in 0..self.height {
            for c in 0..self.width {
                out[r * self.width + c] = self.word(r, c);
            }
        }
        out
    }

    /// CRC-32 digest over the packed planes (black words then white) —
    /// what the integrity scrubber folds at its cadence and cross-checks
    /// a sweep later to catch silent corruption.
    pub fn state_digest(&self) -> u32 {
        let mut state = 0xFFFF_FFFFu32;
        for w in self.black.iter().chain(self.white.iter()) {
            state = crate::vault::crc32_update(state, &w.to_le_bytes());
        }
        !state
    }

    /// Flip bit `bit % 64` of packed word `word % words` — the chaos
    /// drill's silent-corruption injection. Flips one spin of one
    /// replica; every downstream sweep is poisoned but nothing faults.
    pub(crate) fn corrupt_word(&mut self, word: usize, bit: u8) {
        let total = self.black.len() + self.white.len();
        let idx = word % total;
        let mask = 1u64 << (bit % 64);
        if idx < self.black.len() {
            self.black[idx] ^= mask;
        } else {
            let i = idx - self.black.len();
            self.white[i] ^= mask;
        }
    }

    /// Snapshot this window.
    pub fn checkpoint(&self) -> MultiSpinCheckpoint {
        MultiSpinCheckpoint {
            version: MULTISPIN_CHECKPOINT_VERSION,
            height: self.height,
            width: self.width,
            row0: self.row0,
            col0: self.col0,
            beta: self.beta,
            seed: self.seed,
            sweep_index: self.sweep_index,
            words: self.to_words(),
        }
    }

    /// Restore a single-window snapshot.
    pub fn restore(ck: &MultiSpinCheckpoint) -> Result<MultiSpinIsing, String> {
        ck.validate()?;
        Ok(Self::from_words_at(
            &ck.words,
            ck.height,
            ck.width,
            ck.beta,
            ck.seed,
            ck.row0,
            ck.col0,
            ck.sweep_index,
        ))
    }

    /// One full sweep (black + white) of all replicas, periodic within
    /// this window (single-core torus).
    pub fn sweep(&mut self) {
        let track = obs::is_metrics();
        let alloc0 = if track { obs::alloc::allocated_bytes() } else { 0 };
        self.update_color(Color::Black, None);
        self.update_color(Color::White, None);
        self.advance_sweep();
        if track {
            let delta = obs::alloc::allocated_bytes() - alloc0;
            obs::metrics().gauge("alloc_bytes_per_sweep").set(delta as f64);
        }
    }

    /// Bump the sweep index after both color phases ran (the pod driver
    /// calls the color updates itself, with halos).
    pub fn advance_sweep(&mut self) {
        self.sweep_index += 1;
    }

    /// Update all sites of `color` across all replicas. `halos` supplies
    /// cross-core boundary words; `None` wraps within this window.
    pub fn update_color(&mut self, color: Color, halos: Option<&PackedHalos>) {
        let p = color.tag() as usize;
        let (h, w2) = (self.height, self.width / 2);
        if let Some(hl) = halos {
            assert_eq!(hl.north.len(), w2, "north halo length");
            assert_eq!(hl.south.len(), w2, "south halo length");
            assert_eq!(hl.west.len(), h / 2, "west halo length");
            assert_eq!(hl.east.len(), h / 2, "east halo length");
        }
        let (row0, col0) = (self.row0, self.col0);
        let (p4_bits, p2_bits) = (self.p4_bits, self.p2_bits);
        let key = self.key;
        let sweep = self.sweep_index;
        let sweep_lo = sweep as u32;
        let c3_base = (((sweep >> 32) as u32) & 0x00FF_FFFF) | ((color.tag() as u32) << 31);
        let track = obs::is_metrics();
        let tile_rows = self.tile_rows();
        let accepted = std::sync::atomic::AtomicU64::new(0);

        let (cur, other): (&mut Vec<u64>, &Vec<u64>) =
            if p == 0 { (&mut self.black, &self.white) } else { (&mut self.white, &self.black) };
        let other: &[u64] = other;

        // One monomorphized row kernel per SIMD tier: dispatch happens
        // here, once per color update, so inside each tile the tree feeds
        // are inlined direct calls, not per-word function pointers.
        let run_tile: fn(&ColorSweep, &SendPtr, usize) = match tree_feed().isa {
            #[cfg(target_arch = "x86_64")]
            SimdIsa::Sse2 => run_tile_sse2,
            #[cfg(target_arch = "x86_64")]
            SimdIsa::Avx2 => run_tile_avx2_entry,
            #[cfg(target_arch = "x86_64")]
            SimdIsa::Avx512 => run_tile_avx512_entry,
            _ => run_tile_scalar,
        };
        let cs = ColorSweep {
            h,
            w2,
            row0,
            col0,
            p,
            tile_rows,
            p4_bits,
            p2_bits,
            key,
            sweep_lo,
            c3_base,
            other,
            halos,
            track,
            accepted: &accepted,
        };

        // Cache-blocked tiles over the persistent sweep pool: rows are
        // grouped so a tile's working set stays L1-resident, and tiles
        // are claimed dynamically from the pool's atomic counter so
        // uneven Bernoulli tails balance. The pool's dispatch path does
        // not allocate, keeping the measured steady state at 0 B/sweep
        // with the parallel path enabled (rayon's per-scope task
        // machinery, which this replaces, did not).
        let n_tiles = h.div_ceil(tile_rows);
        let base = SendPtr(cur.as_mut_ptr());
        let (base, cs) = (&base, &cs);
        let do_tile = |t: usize| run_tile(cs, base, t);
        sweep_pool::pool().run(n_tiles, &do_tile);

        if track {
            let m = obs::metrics();
            m.counter("flip_proposals_total").inc((REPLICAS * h * w2) as u64);
            m.counter("flips_accepted_total").inc(accepted.into_inner());
            m.gauge("simd_lanes").set(tree_feed().isa.lanes() as f64);
            m.gauge("tile_rows").set(tile_rows as f64);
        }
    }

    /// The four packed collective-permute payloads another core needs from
    /// this one for a `color` half-sweep, in `[north, south, west, east]`
    /// receive-slot order (all payloads are opposite-color words).
    pub fn halo_exchange_spec(&self, color: Color) -> [(Vec<u64>, Dir); 4] {
        let p = color.tag() as usize;
        let q = 1 - p;
        let (h, w2) = (self.height, self.width / 2);
        let q_arr: &[u64] = if p == 0 { &self.white } else { &self.black };
        // Receiver's north halo = my last row, sent southward; etc.
        let north = q_arr[(h - 1) * w2..h * w2].to_vec();
        let south = q_arr[..w2].to_vec();
        // Receiver's west halo = my east edge (j = w2−1) on rows r ≡ p;
        // receiver's east halo = my west edge (j = 0) on rows r ≡ q.
        let west: Vec<u64> = (p..h).step_by(2).map(|r| q_arr[r * w2 + w2 - 1]).collect();
        let east: Vec<u64> = (q..h).step_by(2).map(|r| q_arr[r * w2]).collect();
        [(north, Dir::South), (south, Dir::North), (west, Dir::East), (east, Dir::West)]
    }
}

/// Current multispin checkpoint format version.
pub const MULTISPIN_CHECKPOINT_VERSION: u32 = 1;

/// A resumable snapshot of one packed window. Because the engine is
/// site-keyed, `seed` and `sweep_index` are the complete RNG state.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MultiSpinCheckpoint {
    /// Format tag.
    pub version: u32,
    /// Window height.
    pub height: usize,
    /// Window width.
    pub width: usize,
    /// Global row of the window's first row.
    pub row0: usize,
    /// Global column of the window's first column.
    pub col0: usize,
    /// Inverse temperature β.
    pub beta: f64,
    /// Master seed.
    pub seed: u64,
    /// Sweeps completed.
    pub sweep_index: u64,
    /// Row-major packed words, one `u64` per site (bit k = replica k).
    pub words: Vec<u64>,
}

impl MultiSpinCheckpoint {
    fn validate(&self) -> Result<(), String> {
        if self.version != MULTISPIN_CHECKPOINT_VERSION {
            return Err(format!("unsupported multispin checkpoint version {}", self.version));
        }
        if self.words.len() != self.height * self.width {
            return Err(format!(
                "payload carries {} words for a {}×{} window",
                self.words.len(),
                self.height,
                self.width
            ));
        }
        if !self.beta.is_finite() {
            return Err(format!("non-finite beta {}", self.beta));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Pod layer: replica-parallel SPMD runs with packed halo exchange
// ---------------------------------------------------------------------

/// Configuration of a multi-spin pod run (always site-keyed).
#[derive(Clone, Copy, Debug)]
pub struct MultiSpinPodConfig {
    /// Core topology.
    pub torus: Torus,
    /// Per-core lattice height (even).
    pub per_core_h: usize,
    /// Per-core lattice width (even).
    pub per_core_w: usize,
    /// Inverse temperature β.
    pub beta: f64,
    /// Master seed.
    pub seed: u64,
}

impl MultiSpinPodConfig {
    /// Global lattice height.
    pub fn global_h(&self) -> usize {
        self.per_core_h * self.torus.nx
    }

    /// Global lattice width.
    pub fn global_w(&self) -> usize {
        self.per_core_w * self.torus.ny
    }

    /// Sites per replica.
    pub fn sites(&self) -> usize {
        self.global_h() * self.global_w()
    }

    /// Replica-spins proposed per sweep across the pod.
    pub fn flips_per_sweep(&self) -> u64 {
        (REPLICAS * self.sites()) as u64
    }
}

/// Result of a multi-spin pod run.
#[derive(Debug)]
pub struct MultiSpinPodResult {
    /// Per-sweep, per-replica global `Σσ` (64 independent chains),
    /// spanning sweep 1 to the final sweep even across resumes.
    pub replica_magnetizations: Vec<[f64; REPLICAS]>,
    /// The final packed global lattice, row-major, one word per site.
    pub final_words: Vec<u64>,
    /// Global lattice height.
    pub height: usize,
    /// Global lattice width.
    pub width: usize,
}

/// Current multispin pod checkpoint format version.
pub const MULTISPIN_POD_CHECKPOINT_VERSION: u32 = 1;

/// A resumable snapshot of a whole multi-spin pod run. Site-keyed by
/// construction, so it restores onto **any** torus shape covering the same
/// global lattice.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MultiSpinPodCheckpoint {
    /// Format tag.
    pub version: u32,
    /// Torus extent along the first axis at snapshot time.
    pub nx: usize,
    /// Torus extent along the second axis.
    pub ny: usize,
    /// Per-core lattice height at snapshot time.
    pub per_core_h: usize,
    /// Per-core lattice width at snapshot time.
    pub per_core_w: usize,
    /// Inverse temperature β.
    pub beta: f64,
    /// Master seed.
    pub seed: u64,
    /// Sweeps completed.
    pub sweep_index: u64,
    /// Per-sweep, per-replica global `Σσ` history (inner length 64).
    pub replica_magnetizations: Vec<Vec<f64>>,
    /// Per-core snapshots, indexed by core id on the `nx × ny` torus.
    pub cores: Vec<MultiSpinCheckpoint>,
}

impl MultiSpinPodCheckpoint {
    /// Global lattice height.
    pub fn global_h(&self) -> usize {
        self.nx * self.per_core_h
    }

    /// Global lattice width.
    pub fn global_w(&self) -> usize {
        self.ny * self.per_core_w
    }

    /// Serialize to JSON. Serializer failures surface as
    /// [`PodError::Serialize`] instead of panicking a recovery path.
    pub fn to_json(&self) -> Result<String, PodError> {
        serde_json::to_string(self).map_err(|e| PodError::Serialize(e.to_string()))
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> Result<MultiSpinPodCheckpoint, PodError> {
        serde_json::from_str(s).map_err(|e| PodError::Resume(format!("bad JSON: {e}")))
    }
}

/// Shared landing pad for in-flight per-core multispin snapshots — the
/// packed instantiation of the generic
/// [`crate::distributed::EngineStore`]: one [`MultiSpinCheckpoint`] and a
/// per-replica magnetization history per core.
pub type MultiSpinStore = crate::distributed::EngineStore<MultiSpinCheckpoint, [f64; REPLICAS]>;

/// Options for a single (non-retrying) multi-spin pod run.
#[derive(Default)]
pub struct MultiSpinPodRunOpts<'a> {
    /// Take a pod snapshot every this many sweeps (and always at the end).
    pub checkpoint_every: Option<usize>,
    /// Continue from this snapshot instead of the seed-determined start.
    pub resume: Option<&'a MultiSpinPodCheckpoint>,
    /// Mesh runtime knobs: recv timeout, fault plan, attempt number.
    pub mesh: MeshConfig,
    /// Where cores land their snapshots.
    pub store: Option<&'a MultiSpinStore>,
}

/// Host-side resume data pre-validated for the target torus.
struct MsResumeData {
    start_sweep: u64,
    history: Vec<[f64; REPLICAS]>,
    /// The stitched global packed lattice, row-major.
    global_words: Vec<u64>,
}

/// Run `sweeps` full sweeps from the seed-determined hot start.
pub fn run_multispin_pod(
    cfg: &MultiSpinPodConfig,
    sweeps: usize,
) -> Result<MultiSpinPodResult, PodError> {
    run_multispin_pod_with_opts(cfg, sweeps, &MultiSpinPodRunOpts::default())
}

/// [`run_multispin_pod`] with checkpointing, resume, and mesh-fault knobs.
/// `sweeps` is the total chain length (a resume runs the remainder).
pub fn run_multispin_pod_with_opts(
    cfg: &MultiSpinPodConfig,
    sweeps: usize,
    opts: &MultiSpinPodRunOpts<'_>,
) -> Result<MultiSpinPodResult, PodError> {
    let torus = cfg.torus;
    let resume = match opts.resume {
        Some(ck) => Some(prepare_multispin_resume(ck, cfg)?),
        None => None,
    };
    let start_sweep = resume.as_ref().map_or(0, |r| r.start_sweep);
    if start_sweep > sweeps as u64 {
        return Err(PodError::Resume(format!(
            "checkpoint is at sweep {start_sweep}, past the requested total of {sweeps}"
        )));
    }
    let prog = MsPodProgram {
        cfg,
        sweeps,
        resume: resume.as_ref(),
        checkpoint_every: opts.checkpoint_every,
        store: opts.store,
    };
    let per_core: Vec<(Vec<[f64; REPLICAS]>, Vec<u64>)> =
        run_mesh(torus, opts.mesh.clone(), &prog)?;

    let mut mags = resume.map_or_else(Vec::new, |r| r.history);
    mags.extend(reduce_replica_mags(per_core.iter().map(|p| &p.0)));
    let (gh, gw) = (cfg.global_h(), cfg.global_w());
    let mut final_words = vec![0u64; gh * gw];
    for (gr, row) in final_words.chunks_mut(gw).enumerate() {
        for (gc, out) in row.iter_mut().enumerate() {
            let core = torus.id(gr / cfg.per_core_h, gc / cfg.per_core_w);
            *out = per_core[core].1[(gr % cfg.per_core_h) * cfg.per_core_w + (gc % cfg.per_core_w)];
        }
    }
    Ok(MultiSpinPodResult { replica_magnetizations: mags, final_words, height: gh, width: gw })
}

/// Element-wise sum of per-core per-replica magnetization histories.
fn reduce_replica_mags<'a, I: IntoIterator<Item = &'a Vec<[f64; REPLICAS]>>>(
    per_core: I,
) -> Vec<[f64; REPLICAS]> {
    let mut out: Vec<[f64; REPLICAS]> = Vec::new();
    for mags in per_core {
        if out.is_empty() {
            out = vec![[0.0; REPLICAS]; mags.len()];
        }
        for (acc, m) in out.iter_mut().zip(mags.iter()) {
            for (a, v) in acc.iter_mut().zip(m.iter()) {
                *a += v;
            }
        }
    }
    out
}

/// Validate a snapshot against the (possibly reshaped) target config and
/// stitch the global packed lattice for re-slicing.
fn prepare_multispin_resume(
    ck: &MultiSpinPodCheckpoint,
    cfg: &MultiSpinPodConfig,
) -> Result<MsResumeData, PodError> {
    let err = |msg: String| Err(PodError::Resume(msg));
    if ck.version != MULTISPIN_POD_CHECKPOINT_VERSION {
        return err(format!("unsupported multispin pod checkpoint version {}", ck.version));
    }
    if ck.cores.len() != ck.nx * ck.ny {
        return err(format!(
            "checkpoint claims a {}×{} torus but carries {} cores",
            ck.nx,
            ck.ny,
            ck.cores.len()
        ));
    }
    let (gh, gw) = (ck.global_h(), ck.global_w());
    if gh != cfg.global_h() || gw != cfg.global_w() {
        return err(format!(
            "checkpoint covers a {gh}×{gw} global lattice but the target config is {}×{}",
            cfg.global_h(),
            cfg.global_w()
        ));
    }
    if ck.beta != cfg.beta {
        return err(format!("beta mismatch: checkpoint {} vs config {}", ck.beta, cfg.beta));
    }
    if ck.seed != cfg.seed {
        return err(format!("seed mismatch: checkpoint {} vs config {}", ck.seed, cfg.seed));
    }
    if ck.replica_magnetizations.len() as u64 != ck.sweep_index {
        return err(format!(
            "history length {} does not match sweep index {}",
            ck.replica_magnetizations.len(),
            ck.sweep_index
        ));
    }
    if ck.replica_magnetizations.iter().any(|m| m.len() != REPLICAS) {
        return err("history rows must carry one value per replica".into());
    }
    let ck_torus = Torus::new(ck.nx, ck.ny);
    for (id, c) in ck.cores.iter().enumerate() {
        let (x, y) = ck_torus.coords(id);
        if c.height != ck.per_core_h
            || c.width != ck.per_core_w
            || c.row0 != x * ck.per_core_h
            || c.col0 != y * ck.per_core_w
        {
            return err(format!("core {id} window does not match the checkpoint geometry"));
        }
        if c.sweep_index != ck.sweep_index {
            return err(format!(
                "core {id} is at sweep {} but the pod snapshot claims {}",
                c.sweep_index, ck.sweep_index
            ));
        }
        if c.beta != ck.beta || c.seed != ck.seed {
            return err(format!("core {id} carries mismatched beta/seed"));
        }
        c.validate().map_err(|e| PodError::Resume(format!("core {id}: {e}")))?;
    }
    // Stitch the sharded global lattice; reshape is a pure re-slice
    // because the engine is site-keyed.
    let mut global_words = vec![0u64; gh * gw];
    for (gr, row) in global_words.chunks_mut(gw).enumerate() {
        for (gc, out) in row.iter_mut().enumerate() {
            let core = ck_torus.id(gr / ck.per_core_h, gc / ck.per_core_w);
            *out =
                ck.cores[core].words[(gr % ck.per_core_h) * ck.per_core_w + (gc % ck.per_core_w)];
        }
    }
    let history = ck
        .replica_magnetizations
        .iter()
        .map(|m| {
            let mut a = [0.0; REPLICAS];
            a.copy_from_slice(m);
            a
        })
        .collect();
    Ok(MsResumeData { start_sweep: ck.sweep_index, history, global_words })
}

/// The per-core SPMD program for the packed engine, generic over the
/// substrate (dedicated thread or cooperative task).
async fn ms_core_main<H: Collectives<Vec<u64>>>(
    cfg: &MultiSpinPodConfig,
    mut handle: H,
    sweeps: usize,
    resume: Option<&MsResumeData>,
    checkpoint_every: Option<usize>,
    store: Option<&MultiSpinStore>,
) -> Result<(Vec<[f64; REPLICAS]>, Vec<u64>), MeshError> {
    let id = handle.id();
    let (x, y) = handle.coords();
    let _postmortem = crate::distributed::arm_core_observability(id, x, y);
    let row0 = x * cfg.per_core_h;
    let col0 = y * cfg.per_core_w;
    let mut sim = match resume {
        None => MultiSpinIsing::with_offset(
            cfg.per_core_h,
            cfg.per_core_w,
            cfg.beta,
            cfg.seed,
            row0,
            col0,
        ),
        Some(r) => {
            let gw = cfg.global_w();
            let mut window = vec![0u64; cfg.per_core_h * cfg.per_core_w];
            for (rr, row) in window.chunks_mut(cfg.per_core_w).enumerate() {
                let base = (row0 + rr) * gw + col0;
                row.copy_from_slice(&r.global_words[base..base + cfg.per_core_w]);
            }
            MultiSpinIsing::from_words_at(
                &window,
                cfg.per_core_h,
                cfg.per_core_w,
                cfg.beta,
                cfg.seed,
                row0,
                col0,
                r.start_sweep,
            )
        }
    };

    // One u64 word of halo traffic carries the boundary spin of all 64
    // replicas — 32× fewer bytes than shipping each replica as an f32.
    let mags = crate::distributed::drive_mesh_core(
        &mut sim,
        &mut handle,
        id,
        sweeps as u64,
        0,
        checkpoint_every,
        store,
    )
    .await?;
    Ok((mags, sim.to_words()))
}

/// [`CoreProgram`] adapter binding [`ms_core_main`] to a pod run's
/// borrowed host-side state.
struct MsPodProgram<'a> {
    cfg: &'a MultiSpinPodConfig,
    sweeps: usize,
    resume: Option<&'a MsResumeData>,
    checkpoint_every: Option<usize>,
    store: Option<&'a MultiSpinStore>,
}

impl CoreProgram<Vec<u64>> for MsPodProgram<'_> {
    type Out = (Vec<[f64; REPLICAS]>, Vec<u64>);

    fn run<H: Collectives<Vec<u64>>>(
        &self,
        handle: H,
    ) -> impl std::future::Future<Output = Result<Self::Out, MeshError>> + Send {
        ms_core_main(self.cfg, handle, self.sweeps, self.resume, self.checkpoint_every, self.store)
    }
}

/// Assemble a pod checkpoint from a complete store row.
fn assemble_multispin_checkpoint(
    cfg: &MultiSpinPodConfig,
    base: Option<&MultiSpinPodCheckpoint>,
    sweep: u64,
    rows: Vec<(MultiSpinCheckpoint, Vec<[f64; REPLICAS]>)>,
) -> MultiSpinPodCheckpoint {
    let mut mags: Vec<Vec<f64>> =
        base.map(|b| b.replica_magnetizations.clone()).unwrap_or_default();
    mags.extend(reduce_replica_mags(rows.iter().map(|r| &r.1)).iter().map(|m| m.to_vec()));
    MultiSpinPodCheckpoint {
        version: MULTISPIN_POD_CHECKPOINT_VERSION,
        nx: cfg.torus.nx,
        ny: cfg.torus.ny,
        per_core_h: cfg.per_core_h,
        per_core_w: cfg.per_core_w,
        beta: cfg.beta,
        seed: cfg.seed,
        sweep_index: sweep,
        replica_magnetizations: mags,
        cores: rows.into_iter().map(|r| r.0).collect(),
    }
}

/// Outcome of a resilient multi-spin run.
#[derive(Debug)]
pub struct ResilientMultiSpinRun {
    /// The completed run, bit-identical to an uninterrupted one.
    pub result: MultiSpinPodResult,
    /// Restarts actually taken.
    pub restarts: usize,
    /// Every mesh failure observed, in order.
    pub faults_seen: Vec<MeshError>,
    /// The final pod snapshot (at `sweeps`), ready to persist.
    pub final_checkpoint: MultiSpinPodCheckpoint,
    /// The survivor torus the run degraded onto after exhausting its
    /// restart budget, if it did (`None`: full topology throughout).
    pub degraded_to: Option<Torus>,
}

/// Drive a multi-spin pod run to completion through failures, restarting
/// from the latest complete snapshot at most `max_restarts` times — the
/// packed analogue of [`crate::distributed::run_pod_resilient`].
pub fn run_multispin_pod_resilient(
    cfg: &MultiSpinPodConfig,
    sweeps: usize,
    opts: &ResilienceOpts,
    resume: Option<MultiSpinPodCheckpoint>,
) -> Result<ResilientMultiSpinRun, PodError> {
    run_multispin_pod_resilient_impl(cfg, sweeps, opts, resume, None)
}

/// [`run_multispin_pod_resilient`] with every globally consistent snapshot
/// also persisted through a durable [`Vault`] — the packed analogue of
/// [`crate::distributed::run_pod_vaulted`]. The vault is the write side
/// only: load the resumed snapshot with [`Vault::load_latest`] first.
pub fn run_multispin_pod_vaulted(
    cfg: &MultiSpinPodConfig,
    sweeps: usize,
    opts: &ResilienceOpts,
    resume: Option<MultiSpinPodCheckpoint>,
    vault: &Vault,
) -> Result<ResilientMultiSpinRun, PodError> {
    run_multispin_pod_resilient_impl(cfg, sweeps, opts, resume, Some(vault))
}

/// The envelope `kind` tag of multispin pod checkpoints in a vault.
pub const MULTISPIN_VAULT_KIND: &str = "multispin-pod";

/// The packed restart family — the multispin bindings for the shared
/// [`crate::distributed::run_resilient_family`] loop.
#[derive(Clone)]
struct MultiSpinFamily {
    cfg: MultiSpinPodConfig,
    sweeps: usize,
}

impl crate::distributed::RestartFamily for MultiSpinFamily {
    type Ckpt = MultiSpinPodCheckpoint;
    type CoreCkpt = MultiSpinCheckpoint;
    type Obs = [f64; REPLICAS];
    type Output = MultiSpinPodResult;

    const VAULT_KIND: &'static str = MULTISPIN_VAULT_KIND;

    fn cores(&self) -> usize {
        self.cfg.torus.cores()
    }

    fn torus(&self) -> Torus {
        self.cfg.torus
    }

    fn degrade(&self, max_cores: usize) -> Option<Self> {
        // Multispin randomness is always site-keyed, so any torus whose
        // per-core windows stay even continues the trajectory exactly.
        let (gh, gw) = (self.cfg.global_h(), self.cfg.global_w());
        let mut best: Option<Torus> = None;
        for nx in 1..=max_cores {
            if gh % nx != 0 || (gh / nx) % 2 != 0 {
                continue;
            }
            for ny in 1..=max_cores / nx {
                if gw % ny != 0 || (gw / ny) % 2 != 0 {
                    continue;
                }
                let cand = Torus::new(nx, ny);
                // Only strictly smaller pods count as "degraded".
                if cand.cores() >= self.cfg.torus.cores() {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some(b) => {
                        cand.cores() > b.cores() || (cand.cores() == b.cores() && cand.nx < b.nx)
                    }
                };
                if better {
                    best = Some(cand);
                }
            }
        }
        let t = best?;
        let cfg = MultiSpinPodConfig {
            torus: t,
            per_core_h: gh / t.nx,
            per_core_w: gw / t.ny,
            ..self.cfg
        };
        Some(MultiSpinFamily { cfg, sweeps: self.sweeps })
    }

    fn assemble(
        &self,
        base: Option<&MultiSpinPodCheckpoint>,
        sweep: u64,
        rows: Vec<(MultiSpinCheckpoint, Vec<[f64; REPLICAS]>)>,
    ) -> MultiSpinPodCheckpoint {
        assemble_multispin_checkpoint(&self.cfg, base, sweep, rows)
    }

    fn ckpt_to_json(&self, ck: &MultiSpinPodCheckpoint) -> Result<String, PodError> {
        ck.to_json()
    }

    fn attempt(
        &self,
        resume: Option<&MultiSpinPodCheckpoint>,
        checkpoint_every: usize,
        mesh: MeshConfig,
        store: &MultiSpinStore,
    ) -> Result<MultiSpinPodResult, PodError> {
        let run_opts = MultiSpinPodRunOpts {
            checkpoint_every: Some(checkpoint_every),
            resume,
            mesh,
            store: Some(store),
        };
        run_multispin_pod_with_opts(&self.cfg, self.sweeps, &run_opts)
    }
}

fn run_multispin_pod_resilient_impl(
    cfg: &MultiSpinPodConfig,
    sweeps: usize,
    opts: &ResilienceOpts,
    resume: Option<MultiSpinPodCheckpoint>,
    vault: Option<&Vault>,
) -> Result<ResilientMultiSpinRun, PodError> {
    let family = MultiSpinFamily { cfg: *cfg, sweeps };
    let run = crate::distributed::run_resilient_family(&family, opts, resume, vault)?;
    Ok(ResilientMultiSpinRun {
        result: run.output,
        restarts: run.restarts,
        faults_seen: run.faults_seen,
        final_checkpoint: run.final_checkpoint,
        degraded_to: run.degraded_to,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::time::Duration;
    use tpu_ising_device::mesh::{FaultPlan, RetryPolicy};

    /// The offline dev container stubs `serde_json` out; JSON assertions
    /// only run where real serde is available (CI, workstations).
    fn serde_is_real() -> bool {
        serde_json::to_string(&7u32).map(|s| s == "7").unwrap_or(false)
    }

    fn single_core_words(cfg: &MultiSpinPodConfig, sweeps: usize) -> Vec<u64> {
        let mut sim = MultiSpinIsing::new(cfg.global_h(), cfg.global_w(), cfg.beta, cfg.seed);
        for _ in 0..sweeps {
            sim.sweep();
        }
        sim.to_words()
    }

    fn pod_cfg(nx: usize, ny: usize, h: usize, w: usize, seed: u64) -> MultiSpinPodConfig {
        MultiSpinPodConfig {
            torus: Torus::new(nx, ny),
            per_core_h: h,
            per_core_w: w,
            beta: 0.5,
            seed,
        }
    }

    fn fast_resilience(every: usize, faults: FaultPlan) -> ResilienceOpts {
        ResilienceOpts {
            checkpoint_every: every,
            max_restarts: 3,
            recv_timeout: Duration::from_millis(300),
            faults,
            retry: RetryPolicy::none(),
            ..ResilienceOpts::default()
        }
    }

    #[test]
    fn frozen_at_low_temperature_from_cold() {
        let mut ms = MultiSpinIsing::from_words_at(&vec![!0u64; 64], 8, 8, 10.0, 1, 0, 0, 0);
        for _ in 0..5 {
            ms.sweep();
        }
        assert!(ms.to_words().iter().all(|&w| w == !0), "flips at β=10 from ground state");
    }

    #[test]
    fn replicas_decorrelate() {
        let mut ms = MultiSpinIsing::new(8, 8, 0.2, 5);
        for _ in 0..10 {
            ms.sweep();
        }
        let m = ms.replica_magnetizations();
        let distinct = m.iter().map(|&x| x as i64).collect::<std::collections::HashSet<_>>();
        assert!(distinct.len() > 4, "replicas look identical");
    }

    #[test]
    fn low_temperature_orders_all_replicas() {
        let mut ms = MultiSpinIsing::new(16, 16, 0.7, 11);
        for _ in 0..200 {
            ms.sweep();
        }
        let n = 256.0;
        let mean_abs: f64 =
            ms.replica_magnetizations().iter().map(|m| m.abs() / n).sum::<f64>() / 64.0;
        assert!(mean_abs > 0.8, "⟨|m|⟩ = {mean_abs}");
    }

    #[test]
    fn matches_baseline_update_semantics_at_beta_zero() {
        // At β = 0 the two acceptance thresholds are (essentially) 1, so a
        // black half-sweep must flip exactly the black sites.
        let mut ms = MultiSpinIsing::new(6, 6, 0.0, 2);
        let before = ms.to_words();
        ms.update_color(Color::Black, None);
        let after = ms.to_words();
        for r in 0..6 {
            for c in 0..6 {
                let idx = r * 6 + c;
                if (r + c) % 2 == 0 {
                    assert_eq!(after[idx], !before[idx], "black site ({r},{c}) must flip");
                } else {
                    assert_eq!(after[idx], before[idx], "white site ({r},{c}) must not");
                }
            }
        }
    }

    #[test]
    fn word_layout_roundtrips() {
        let ms = MultiSpinIsing::new(6, 10, 0.4, 9);
        let words = ms.to_words();
        let back = MultiSpinIsing::from_words_at(&words, 6, 10, 0.4, 9, 0, 0, 0);
        assert_eq!(back.to_words(), words);
        for r in 0..6 {
            for c in 0..10 {
                assert_eq!(ms.word(r, c), words[r * 10 + c]);
            }
        }
    }

    #[test]
    fn tiled_sweeps_match_untiled_bit_exactly_at_awkward_sizes() {
        // Cache blocking is scheduling only: any tile height must
        // reproduce the untiled trajectory word for word, including
        // heights that do not divide the row count (partial last tile)
        // and a tile height larger than the lattice.
        for (h, w) in [(10usize, 8usize), (6, 12), (14, 6)] {
            for beta in [0.2, 0.44, 0.7] {
                let mut reference = MultiSpinIsing::new(h, w, beta, 4242);
                reference.set_tile_rows(Some(h)); // one tile = untiled
                for _ in 0..6 {
                    reference.sweep();
                }
                for tile in [1usize, 3, 4, h - 1, h + 5] {
                    let mut tiled = MultiSpinIsing::new(h, w, beta, 4242);
                    tiled.set_tile_rows(Some(tile));
                    assert_eq!(tiled.tile_rows(), tile);
                    for _ in 0..6 {
                        tiled.sweep();
                    }
                    assert_eq!(
                        tiled.to_words(),
                        reference.to_words(),
                        "tile_rows={tile} diverged on {h}x{w} at beta={beta}"
                    );
                }
            }
        }
    }

    #[test]
    fn tile_rows_resolution_order() {
        let mut ms = MultiSpinIsing::new(8, 8, 0.4, 1);
        // explicit setter wins; None/0 restore the automatic default
        ms.set_tile_rows(Some(7));
        assert_eq!(ms.tile_rows(), 7);
        ms.set_tile_rows(Some(0));
        assert_eq!(ms.tile_rows(), default_tile_rows(4));
        ms.set_tile_rows(None);
        assert_eq!(ms.tile_rows(), default_tile_rows(4));
        // the default is always at least one row and bounded
        for w2 in [1usize, 4, 64, 1024, 100_000] {
            let d = default_tile_rows(w2);
            assert!((4..=64).contains(&d), "default_tile_rows({w2}) = {d}");
        }
    }

    #[test]
    fn sweeps_are_deterministic_and_site_keyed() {
        let mut a = MultiSpinIsing::new(8, 12, 0.45, 33);
        let mut b = MultiSpinIsing::new(8, 12, 0.45, 33);
        for _ in 0..4 {
            a.sweep();
            b.sweep();
        }
        assert_eq!(a.to_words(), b.to_words());
        // a different seed must diverge
        let mut c = MultiSpinIsing::new(8, 12, 0.45, 34);
        for _ in 0..4 {
            c.sweep();
        }
        assert_ne!(a.to_words(), c.to_words());
    }

    #[test]
    fn checkpoint_resume_continues_bit_exactly() {
        let mut full = MultiSpinIsing::new(10, 8, 0.5, 77);
        for _ in 0..6 {
            full.sweep();
        }
        let mut half = MultiSpinIsing::new(10, 8, 0.5, 77);
        for _ in 0..3 {
            half.sweep();
        }
        let ck = half.checkpoint();
        let ck = if serde_is_real() {
            serde_json::from_str(&serde_json::to_string(&ck).unwrap()).unwrap()
        } else {
            ck
        };
        let mut resumed = MultiSpinIsing::restore(&ck).expect("restore");
        for _ in 0..3 {
            resumed.sweep();
        }
        assert_eq!(resumed.to_words(), full.to_words());
        assert_eq!(resumed.sweep_index(), 6);
    }

    #[test]
    fn pod_single_core_equals_local_run() {
        let cfg = pod_cfg(1, 1, 12, 12, 7);
        let pod = run_multispin_pod(&cfg, 5).unwrap();
        assert_eq!(pod.final_words, single_core_words(&cfg, 5));
    }

    #[test]
    fn pod_topology_is_transparent() {
        // The same global lattice split 1×4 vs 4×1 vs 2×2 vs 1×1 gives the
        // same packed trajectory: site-keyed planes ignore the sharding.
        let a = run_multispin_pod(&pod_cfg(1, 4, 16, 4, 99), 4).unwrap();
        let b = run_multispin_pod(&pod_cfg(4, 1, 4, 16, 99), 4).unwrap();
        let c = run_multispin_pod(&pod_cfg(2, 2, 8, 8, 99), 4).unwrap();
        assert_eq!(a.final_words, b.final_words);
        assert_eq!(a.final_words, c.final_words);
        assert_eq!(a.final_words, single_core_words(&pod_cfg(2, 2, 8, 8, 99), 4));
        assert_eq!(a.replica_magnetizations, c.replica_magnetizations);
    }

    #[test]
    fn pod_magnetizations_match_final_words() {
        let cfg = pod_cfg(2, 1, 6, 8, 13);
        let pod = run_multispin_pod(&cfg, 3).unwrap();
        assert_eq!(pod.replica_magnetizations.len(), 3);
        let last = pod.replica_magnetizations.last().unwrap();
        let sim = MultiSpinIsing::from_words_at(
            &pod.final_words,
            pod.height,
            pod.width,
            cfg.beta,
            cfg.seed,
            0,
            0,
            3,
        );
        assert_eq!(&sim.replica_magnetizations()[..], &last[..]);
    }

    #[test]
    fn killed_core_resumes_bit_exact() {
        let cfg = pod_cfg(2, 2, 8, 8, 4242);
        let sweeps = 6;
        // 8 collectives per sweep (4 shifts × 2 colors): seq 30 is inside
        // sweep 4, after the sweep-2 snapshot.
        let faults = FaultPlan::new().kill(3, 30);
        let run = run_multispin_pod_resilient(&cfg, sweeps, &fast_resilience(2, faults), None)
            .expect("resilient run must survive one kill");
        assert_eq!(run.restarts, 1);
        assert_eq!(run.faults_seen, vec![MeshError::InjectedKill { core: 3, seq: 30 }]);
        assert_eq!(run.result.final_words, single_core_words(&cfg, sweeps));
        assert_eq!(run.result.replica_magnetizations.len(), sweeps);
        assert_eq!(run.final_checkpoint.sweep_index, sweeps as u64);
    }

    #[test]
    fn degraded_continuation_is_bit_exact_on_the_survivor_torus() {
        // Exhaust the restart budget on a 2×2 packed pod; the driver must
        // remap onto the 1×2 survivor (per-core 16×8, still even) and end
        // bit-identical to the uninterrupted trajectory.
        let cfg = pod_cfg(2, 2, 8, 8, 4242);
        let sweeps = 6;
        let faults = FaultPlan::new().kill_on_attempt(3, 30, 0).kill_on_attempt(3, 30, 1);
        let mut opts = fast_resilience(2, faults);
        opts.max_restarts = 1;
        opts.degraded_min_cores = Some(2);
        let run = run_multispin_pod_resilient(&cfg, sweeps, &opts, None)
            .expect("degraded continuation must survive budget exhaustion");
        assert_eq!(run.degraded_to, Some(Torus::new(1, 2)));
        assert_eq!(run.result.final_words, single_core_words(&cfg, sweeps));
        let clean = run_multispin_pod_resilient(
            &pod_cfg(1, 2, 16, 8, 4242),
            sweeps,
            &fast_resilience(2, FaultPlan::new()),
            None,
        )
        .expect("clean survivor-topology run");
        assert_eq!(run.result.final_words, clean.result.final_words);
        assert_eq!(run.result.replica_magnetizations, clean.result.replica_magnetizations);
    }

    #[test]
    fn checkpoint_reshapes_onto_different_torus() {
        let cfg_2x2 = pod_cfg(2, 2, 8, 8, 4242);
        let cfg_1x4 = pod_cfg(1, 4, 16, 4, 4242);
        let half =
            run_multispin_pod_resilient(&cfg_2x2, 4, &fast_resilience(2, FaultPlan::new()), None)
                .expect("first half");
        let ckpt = half.final_checkpoint;
        assert_eq!((ckpt.nx, ckpt.ny), (2, 2));
        let ckpt = if serde_is_real() {
            MultiSpinPodCheckpoint::from_json(&ckpt.to_json().unwrap()).unwrap()
        } else {
            ckpt
        };
        let rest = run_multispin_pod_resilient(
            &cfg_1x4,
            8,
            &fast_resilience(2, FaultPlan::new()),
            Some(ckpt),
        )
        .expect("second half on reshaped torus");
        assert_eq!(rest.result.final_words, single_core_words(&cfg_2x2, 8));
        assert_eq!(rest.result.replica_magnetizations.len(), 8);
    }

    #[test]
    fn mismatched_resume_configs_are_rejected() {
        let cfg = pod_cfg(1, 2, 8, 8, 50);
        let run = run_multispin_pod_resilient(&cfg, 2, &fast_resilience(2, FaultPlan::new()), None)
            .expect("run");
        let ck = run.final_checkpoint;
        let reject = |mutate: &dyn Fn(&mut MultiSpinPodConfig)| {
            let mut bad = cfg;
            mutate(&mut bad);
            let err = run_multispin_pod_with_opts(
                &bad,
                4,
                &MultiSpinPodRunOpts { resume: Some(&ck), ..Default::default() },
            )
            .expect_err("mismatch must be rejected");
            assert!(matches!(err, PodError::Resume(_)), "got {err:?}");
        };
        reject(&|c| c.seed = 51);
        reject(&|c| c.beta = 0.9);
        reject(&|c| c.per_core_w = 4); // shrinks the global lattice
                                       // resuming past the end is an error
        let err = run_multispin_pod_with_opts(
            &cfg,
            1,
            &MultiSpinPodRunOpts { resume: Some(&ck), ..Default::default() },
        )
        .expect_err("past-the-end resume must be rejected");
        assert!(matches!(err, PodError::Resume(_)));
    }

    #[test]
    fn halo_spec_shapes_are_packed() {
        let ms = MultiSpinIsing::new(8, 12, 0.5, 3);
        for color in [Color::Black, Color::White] {
            let [n, s, w, e] = ms.halo_exchange_spec(color);
            assert_eq!((n.0.len(), n.1), (6, Dir::South));
            assert_eq!((s.0.len(), s.1), (6, Dir::North));
            assert_eq!((w.0.len(), w.1), (4, Dir::East));
            assert_eq!((e.0.len(), e.1), (4, Dir::West));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Packing → sweeping → unpacking any replica yields a valid ±1
        /// configuration on random even geometries, and the packed words
        /// round-trip through the raster layout.
        #[test]
        fn replica_extraction_is_valid_for_random_geometries(
            hh in 1usize..6,
            ww in 1usize..6,
            seed in any::<u64>(),
            sweeps in 0usize..3,
            k in 0usize..64,
        ) {
            let (h, w) = (2 * hh, 2 * ww);
            let mut ms = MultiSpinIsing::new(h, w, 0.4, seed);
            for _ in 0..sweeps {
                ms.sweep();
            }
            let spins = ms.replica_spins(k);
            prop_assert_eq!(spins.len(), h * w);
            prop_assert!(spins.iter().all(|&s| s == 1 || s == -1));
            for r in 0..h {
                for c in 0..w {
                    prop_assert_eq!(spins[r * w + c], ms.spin(k, r, c));
                    prop_assert_eq!(
                        ((ms.to_words()[r * w + c] >> k) & 1) as i8 * 2 - 1,
                        spins[r * w + c]
                    );
                }
            }
            // raster round-trip continues the trajectory bit-exactly
            let mut back = MultiSpinIsing::from_words_at(
                &ms.to_words(), h, w, 0.4, seed, 0, 0, ms.sweep_index());
            back.sweep();
            ms.sweep();
            prop_assert_eq!(back.to_words(), ms.to_words());
        }
    }
}
