//! Wolff cluster algorithm — an independent cross-check sampler.
//!
//! Near `Tc` single-spin-flip dynamics (everything the paper benchmarks)
//! suffer critical slowing down: the autocorrelation time diverges with
//! lattice size. The Wolff algorithm (Wolff 1989) flips whole stochastic
//! clusters grown with bond probability `p = 1 − e^{−2β}`, which satisfies
//! detailed balance with acceptance 1 and nearly eliminates the slowdown.
//!
//! It shares *no code path* with the checkerboard implementations — a
//! different update family targeting the same Boltzmann distribution — so
//! agreement of its observables with the checkerboard chains is a strong
//! independent validation (used by the physics integration tests).

use crate::prob::Randomness;
use crate::sampler::Sweeper;
use tpu_ising_bf16::Scalar;
use tpu_ising_rng::{PhiloxStream, RandomUniform};
use tpu_ising_tensor::Plane;

/// Wolff cluster sampler on a full plane.
pub struct WolffIsing<S> {
    plane: Plane<S>,
    beta: f64,
    p_add: f64,
    rng: PhiloxStream,
    /// scratch: visited marks (avoids reallocating per cluster)
    visited: Vec<bool>,
    stack: Vec<(usize, usize)>,
    /// total spins flipped, for effective-sweep accounting
    flipped: u64,
}

impl<S: Scalar + RandomUniform> WolffIsing<S> {
    /// Wrap an initial configuration. `rng` must be the bulk variant —
    /// cluster growth is inherently sequential, site-keying does not apply.
    pub fn new(plane: Plane<S>, beta: f64, rng: Randomness) -> Self {
        let stream = match rng {
            Randomness::Bulk(s) => s,
            Randomness::SiteKeyed(_) => {
                panic!("Wolff clusters are sequential; use Randomness::bulk")
            }
        };
        let n = plane.height() * plane.width();
        WolffIsing {
            plane,
            beta,
            p_add: 1.0 - (-2.0 * beta).exp(),
            rng: stream,
            visited: vec![false; n],
            stack: Vec::new(),
            flipped: 0,
        }
    }

    /// The configuration.
    pub fn plane(&self) -> &Plane<S> {
        &self.plane
    }

    /// Inverse temperature.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Change β (updates the bond probability).
    pub fn set_beta(&mut self, beta: f64) {
        self.beta = beta;
        self.p_add = 1.0 - (-2.0 * beta).exp();
    }

    /// Grow and flip one cluster from a random seed site. Returns the
    /// cluster size.
    pub fn cluster_step(&mut self) -> usize {
        let (h, w) = (self.plane.height(), self.plane.width());
        let r0 = (self.rng.next_u64() % h as u64) as usize;
        let c0 = (self.rng.next_u64() % w as u64) as usize;
        let seed_spin = self.plane.get(r0, c0);

        self.visited.iter_mut().for_each(|v| *v = false);
        self.stack.clear();
        self.stack.push((r0, c0));
        self.visited[r0 * w + c0] = true;
        let mut size = 0usize;

        while let Some((r, c)) = self.stack.pop() {
            // flip as we pop (every stacked site is part of the cluster)
            let s = self.plane.get(r, c);
            self.plane.set(r, c, -s);
            size += 1;
            let neighbors =
                [((r + h - 1) % h, c), ((r + 1) % h, c), (r, (c + w - 1) % w), (r, (c + 1) % w)];
            for (nr, nc) in neighbors {
                let idx = nr * w + nc;
                if !self.visited[idx]
                    && self.plane.get(nr, nc) == seed_spin
                    && (self.rng.uniform::<f32>() as f64) < self.p_add
                {
                    self.visited[idx] = true;
                    self.stack.push((nr, nc));
                }
            }
        }
        self.flipped += size as u64;
        size
    }
}

impl<S: Scalar + RandomUniform> Sweeper for WolffIsing<S> {
    /// One "sweep" = enough cluster steps to flip (on average) a lattice's
    /// worth of spins, so chain-driver sample counts stay comparable with
    /// the checkerboard samplers.
    fn sweep(&mut self) {
        let n = (self.plane.height() * self.plane.width()) as u64;
        let target = self.flipped + n;
        while self.flipped < target {
            self.cluster_step();
        }
    }

    fn sites(&self) -> usize {
        self.plane.height() * self.plane.width()
    }

    fn magnetization_sum(&self) -> f64 {
        self.plane.sum_f64()
    }

    fn energy_sum(&self) -> f64 {
        crate::observables::energy_sum(&self.plane)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::random_plane;
    use crate::observables::onsager;
    use crate::sampler::run_chain;
    use crate::T_CRITICAL;

    #[test]
    fn bond_probability_formula() {
        let w = WolffIsing::new(random_plane::<f32>(1, 8, 8), 0.5, Randomness::bulk(1));
        assert!((w.p_add - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
    }

    #[test]
    fn beta_zero_flips_single_sites() {
        // p_add = 0: every cluster is exactly one site.
        let mut w = WolffIsing::new(random_plane::<f32>(2, 8, 8), 0.0, Randomness::bulk(2));
        for _ in 0..50 {
            assert_eq!(w.cluster_step(), 1);
        }
    }

    #[test]
    fn large_beta_flips_whole_aligned_lattice() {
        // from the all-up state at huge β, the cluster is the whole lattice
        let mut w =
            WolffIsing::new(crate::lattice::cold_plane::<f32>(8, 8), 10.0, Randomness::bulk(3));
        assert_eq!(w.cluster_step(), 64);
        // the lattice is now all-down; flipping again restores it
        assert_eq!(w.magnetization_sum(), -64.0);
        assert_eq!(w.cluster_step(), 64);
        assert_eq!(w.magnetization_sum(), 64.0);
    }

    #[test]
    fn spins_stay_spins() {
        let mut w = WolffIsing::new(random_plane::<f32>(4, 16, 16), 0.44, Randomness::bulk(4));
        for _ in 0..10 {
            w.sweep();
        }
        assert!(w.plane().data().iter().all(|&s| s == 1.0 || s == -1.0));
    }

    #[test]
    fn agrees_with_onsager_below_tc() {
        let t = 0.8 * T_CRITICAL;
        let mut w = WolffIsing::new(
            crate::lattice::cold_plane::<f32>(32, 32),
            1.0 / t,
            Randomness::bulk(5),
        );
        let stats = run_chain(&mut w, 100, 600);
        let exact = onsager::magnetization(t);
        assert!(
            (stats.mean_abs_m - exact).abs() < 0.02,
            "Wolff ⟨|m|⟩ = {} vs Onsager {exact}",
            stats.mean_abs_m
        );
    }

    #[test]
    #[should_panic(expected = "sequential")]
    fn site_keyed_randomness_is_rejected() {
        let _ = WolffIsing::new(random_plane::<f32>(1, 4, 4), 0.4, Randomness::site_keyed(1));
    }
}
