//! The update step expressed as an HLO-lite graph.
//!
//! The paper's program is a TensorFlow graph compiled through XLA; this
//! module builds the same computation as a [`Graph`] so the repository
//! exercises that software path too: the graph is built once per color,
//! optimized (DCE) and interpreted — and the equivalence test checks the
//! interpreted step makes bit-identical flip decisions with the direct
//! [`CompactIsing`](crate::compact::CompactIsing) implementation.

use crate::lattice::Color;
use tpu_ising_hlo::graph::{Dtype, Graph, Id, Shape};
use tpu_ising_tensor::{bidiag_kernel, Axis, Side};

/// The pieces of a built compact-update graph.
pub struct CompactStepGraph {
    /// The op graph.
    pub graph: Graph,
    /// Parameter ids, in order: σ̂00, σ̂01, σ̂10, σ̂11.
    pub params: [Id; 4],
    /// Output ids: the two updated compact sub-lattices of the color
    /// (σ̂00, σ̂11 for black; σ̂01, σ̂10 for white).
    pub outputs: [Id; 2],
}

/// Build the one-color compact update (Algorithm 2) as a graph over
/// quarter grids `[m, n, t, t]`.
///
/// RNG op order matches [`CompactIsing::update_color`]'s bulk consumption
/// (probs for the first compact sub-lattice, then the second), so feeding
/// the interpreter the same Philox stream reproduces the direct
/// implementation exactly.
///
/// [`CompactIsing::update_color`]: crate::compact::CompactIsing::update_color
pub fn build_compact_color_step(
    m: usize,
    n: usize,
    t: usize,
    beta: f64,
    color: Color,
    dtype: Dtype,
) -> CompactStepGraph {
    let mut g = Graph::new();
    let qshape = Shape::new([m, n, t, t], dtype);
    let q00 = g.parameter(qshape);
    let q01 = g.parameter(qshape);
    let q10 = g.parameter(qshape);
    let q11 = g.parameter(qshape);
    let khat = g.constant_mat(&bidiag_kernel::<f32>(t), dtype);
    let khat_t = g.constant_mat(&bidiag_kernel::<f32>(t).transpose(), dtype);

    // The compensation edges: for a single-core torus the halo *is* the
    // wrapped grid roll, so roll+edge expresses both tile-boundary and
    // lattice-boundary compensation at once.
    let comp_row = |g: &mut Graph, src: Id, d0: isize, from: Side, onto: Side, nn: Id| {
        let rolled = g.roll_batch(src, d0, 0);
        let e = g.edge(rolled, Axis::Row, from);
        g.add_edge(nn, e, Axis::Row, onto)
    };
    let comp_col = |g: &mut Graph, src: Id, d1: isize, from: Side, onto: Side, nn: Id| {
        let rolled = g.roll_batch(src, 0, d1);
        let e = g.edge(rolled, Axis::Col, from);
        g.add_edge(nn, e, Axis::Col, onto)
    };

    let (first, second, nn0, nn1) = match color {
        Color::Black => {
            // nn(σ̂00) = σ̂01·K̂ + K̂ᵀ·σ̂10, compensated north/west
            let a = g.matmul_right(q01, khat);
            let b = g.matmul_left(khat_t, q10);
            let nn0 = g.add(a, b);
            let nn0 = comp_row(&mut g, q10, 1, Side::Last, Side::First, nn0);
            let nn0 = comp_col(&mut g, q01, 1, Side::Last, Side::First, nn0);
            // nn(σ̂11) = K̂·σ̂01 + σ̂10·K̂ᵀ, compensated south/east
            let a = g.matmul_left(khat, q01);
            let b = g.matmul_right(q10, khat_t);
            let nn1 = g.add(a, b);
            let nn1 = comp_row(&mut g, q01, -1, Side::First, Side::Last, nn1);
            let nn1 = comp_col(&mut g, q10, -1, Side::First, Side::Last, nn1);
            (q00, q11, nn0, nn1)
        }
        Color::White => {
            // nn(σ̂01) = σ̂00·K̂ᵀ + K̂ᵀ·σ̂11, compensated north/east
            let a = g.matmul_right(q00, khat_t);
            let b = g.matmul_left(khat_t, q11);
            let nn0 = g.add(a, b);
            let nn0 = comp_row(&mut g, q11, 1, Side::Last, Side::First, nn0);
            let nn0 = comp_col(&mut g, q00, -1, Side::First, Side::Last, nn0);
            // nn(σ̂10) = K̂·σ̂00 + σ̂11·K̂, compensated south/west
            let a = g.matmul_left(khat, q00);
            let b = g.matmul_right(q11, khat);
            let nn1 = g.add(a, b);
            let nn1 = comp_row(&mut g, q00, -1, Side::First, Side::Last, nn1);
            let nn1 = comp_col(&mut g, q11, 1, Side::Last, Side::First, nn1);
            (q01, q10, nn0, nn1)
        }
    };

    // Acceptance, flips, and the update σ ← σ·(1 − 2·flip) for both
    // compact sub-lattices; probs drawn in first-then-second order.
    let flip = |g: &mut Graph, q: Id, nn: Id| {
        let probs = g.rng_uniform(qshape);
        let nns = g.mul(nn, q);
        let scaled = g.mul_scalar(nns, -2.0 * beta);
        let ratio = g.exp(scaled);
        let flips = g.lt(probs, ratio);
        let two_flips = g.add(flips, flips);
        let delta = g.mul(two_flips, q);
        g.sub(q, delta)
    };
    let out0 = flip(&mut g, first, nn0);
    let out1 = flip(&mut g, second, nn1);

    CompactStepGraph { graph: g, params: [q00, q01, q10, q11], outputs: [out0, out1] }
}

/// The pieces of a built conv-variant (appendix) update graph.
pub struct ConvStepGraph {
    /// The op graph.
    pub graph: Graph,
    /// The single lattice parameter `[m, n, t, t]`.
    pub param: Id,
    /// The updated lattice.
    pub output: Id,
}

/// Build the appendix implementation's one-color update as a graph: a
/// plus-kernel convolution for the neighbor sums and a parity mask for
/// color selection (the conv analogue of Algorithm 1, which is what the
/// whole-lattice layout requires). `t` must be even so intra-tile parity
/// equals global parity.
pub fn build_conv_color_step(
    m: usize,
    n: usize,
    t: usize,
    beta: f64,
    color: Color,
    dtype: Dtype,
) -> ConvStepGraph {
    assert!(t.is_multiple_of(2), "tile size must be even for a parity mask");
    let mut g = Graph::new();
    let shape = Shape::new([m, n, t, t], dtype);
    let sigma = g.parameter(shape);
    let probs = g.rng_uniform(shape);
    let nn = g.conv_plus(sigma);
    let nns = g.mul(nn, sigma);
    let scaled = g.mul_scalar(nns, -2.0 * beta);
    let ratio = g.exp(scaled);
    let accept = g.lt(probs, ratio);
    // parity mask: 1 where the site belongs to `color`
    let want = match color {
        Color::Black => 0,
        Color::White => 1,
    };
    let mut mask_data = Vec::with_capacity(m * n * t * t);
    for _b0 in 0..m {
        for _b1 in 0..n {
            for r in 0..t {
                for c in 0..t {
                    mask_data.push(if (r + c) % 2 == want { 1.0 } else { 0.0 });
                }
            }
        }
    }
    let mask = g.constant(tpu_ising_hlo::Literal { dims: [m, n, t, t], data: mask_data }, dtype);
    let flips = g.mul(accept, mask);
    let two_flips = g.add(flips, flips);
    let delta = g.mul(two_flips, sigma);
    let output = g.sub(sigma, delta);
    ConvStepGraph { graph: g, param: sigma, output }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compact::CompactIsing;
    use crate::lattice::random_plane;
    use crate::prob::Randomness;
    use tpu_ising_hlo::passes::dce;
    use tpu_ising_rng::PhiloxStream;
    use tpu_ising_tensor::{Plane, Tensor4};

    fn quarters(plane: &Plane<f32>, t: usize) -> [Tensor4<f32>; 4] {
        let parts = plane.deinterleave();
        [parts[0].to_tiles(t), parts[1].to_tiles(t), parts[2].to_tiles(t), parts[3].to_tiles(t)]
    }

    #[test]
    fn graph_step_matches_direct_implementation() {
        let (h, w, t) = (16, 16, 4);
        let beta = 1.0 / crate::T_CRITICAL;
        let seed = 2718;
        let init = random_plane::<f32>(5, h, w);

        // Direct implementation, one black update with a bulk stream.
        let mut direct = CompactIsing::from_plane(&init, t, beta, Randomness::bulk(seed));
        let halos = direct.local_halos(Color::Black);
        direct.update_color(Color::Black, &halos);

        // Graph-built step fed the same stream.
        let built =
            build_compact_color_step(h / (2 * t), w / (2 * t), t, beta, Color::Black, Dtype::F32);
        let [p00, p01, p10, p11] = quarters(&init, t);
        let mut stream = PhiloxStream::from_seed(seed);
        let out = tpu_ising_hlo::evaluate(
            &built.graph,
            &[p00, p01, p10, p11],
            &mut stream,
            &built.outputs,
        );

        // Compare: the direct object's q00/q11 vs graph outputs.
        let direct_plane = direct.to_plane();
        let [d00, _, _, d11] = quarters(&direct_plane, t);
        assert_eq!(out[0], d00, "σ̂00 after black update");
        assert_eq!(out[1], d11, "σ̂11 after black update");
    }

    #[test]
    fn white_graph_matches_direct_too() {
        let (h, w, t) = (8, 8, 2);
        let beta = 0.55;
        let seed = 161;
        let init = random_plane::<f32>(50, h, w);
        let mut direct = CompactIsing::from_plane(&init, t, beta, Randomness::bulk(seed));
        let halos = direct.local_halos(Color::White);
        direct.update_color(Color::White, &halos);
        let built =
            build_compact_color_step(h / (2 * t), w / (2 * t), t, beta, Color::White, Dtype::F32);
        let [p00, p01, p10, p11] = quarters(&init, t);
        let mut stream = PhiloxStream::from_seed(seed);
        let out = tpu_ising_hlo::evaluate(
            &built.graph,
            &[p00, p01, p10, p11],
            &mut stream,
            &built.outputs,
        );
        let direct_plane = direct.to_plane();
        let [_, d01, d10, _] = quarters(&direct_plane, t);
        assert_eq!(out[0], d01, "σ̂01 after white update");
        assert_eq!(out[1], d10, "σ̂10 after white update");
    }

    #[test]
    fn dce_keeps_the_step_intact() {
        let built = build_compact_color_step(2, 2, 2, 0.4, Color::Black, Dtype::F32);
        let (g2, roots) = dce(&built.graph, &built.outputs);
        assert!(g2.len() <= built.graph.len());
        let init = random_plane::<f32>(3, 8, 8);
        let [p00, p01, p10, p11] = quarters(&init, 2);
        let mut s1 = PhiloxStream::from_seed(1);
        let mut s2 = PhiloxStream::from_seed(1);
        let a = tpu_ising_hlo::evaluate(
            &built.graph,
            &[p00.clone(), p01.clone(), p10.clone(), p11.clone()],
            &mut s1,
            &built.outputs,
        );
        let b = tpu_ising_hlo::evaluate(&g2, &[p00, p01, p10, p11], &mut s2, &roots);
        assert_eq!(a, b);
    }

    #[test]
    fn conv_graph_matches_naive_algorithm_bitwise() {
        use crate::naive::NaiveIsing;
        // Both the conv graph and the naive masked algorithm generate one
        // full-lattice probs tensor in identical layout order and compute
        // identical (exact-integer) neighbor sums, so with the same Philox
        // stream they make the same flip decisions.
        let (h, w, t) = (16, 16, 4);
        let beta = 1.0 / crate::T_CRITICAL;
        let seed = 555;
        let init = random_plane::<f32>(9, h, w);
        let mut naive = NaiveIsing::from_plane(&init, t, beta, crate::prob::Randomness::bulk(seed));
        naive.update_color(Color::Black);

        let built = build_conv_color_step(h / t, w / t, t, beta, Color::Black, Dtype::F32);
        let mut stream = PhiloxStream::from_seed(seed);
        let out = tpu_ising_hlo::evaluate(
            &built.graph,
            &[init.to_tiles(t)],
            &mut stream,
            &[built.output],
        );
        assert_eq!(Plane::from_tiles(&out[0]), naive.to_plane());
    }

    #[test]
    fn conv_graph_survives_optimization() {
        let built = build_conv_color_step(2, 2, 4, 0.44, Color::White, Dtype::F32);
        let (g2, roots) = tpu_ising_hlo::passes::optimize(&built.graph, &[built.output]);
        tpu_ising_hlo::printer::verify(&g2).unwrap();
        let init = random_plane::<f32>(4, 8, 8);
        let mut s1 = PhiloxStream::from_seed(3);
        let mut s2 = PhiloxStream::from_seed(3);
        let a =
            tpu_ising_hlo::evaluate(&built.graph, &[init.to_tiles(4)], &mut s1, &[built.output]);
        let b = tpu_ising_hlo::evaluate(&g2, &[init.to_tiles(4)], &mut s2, &roots);
        assert_eq!(a, b);
    }

    #[test]
    fn graph_is_compact_sized() {
        // The paper stresses the whole program is ~600 lines; our graph for
        // one color update is a few dozen ops.
        let built = build_compact_color_step(4, 4, 128, 0.44, Color::Black, Dtype::Bf16);
        assert!(built.graph.len() < 50, "graph has {} ops", built.graph.len());
    }

    #[test]
    fn cost_analysis_is_mxu_dominated() {
        use tpu_ising_device::trace::SpanKind;
        let built = build_compact_color_step(16, 16, 128, 0.44, Color::Black, Dtype::Bf16);
        let trace = tpu_ising_hlo::cost::analyze(&built.graph, &built.outputs, 1);
        let bd = trace.breakdown();
        assert!(bd.mxu > 0.0);
        assert!(bd.vpu > 0.0);
        // matmuls: 4 over [16,16,128,128] at 128 MACs per output element
        let expect_macs = 4.0 * (16 * 16 * 128 * 128) as f64 * 128.0;
        let got = bd.mxu * tpu_ising_device::calib::MXU_SUSTAINED_MACS;
        assert!((got - expect_macs).abs() / expect_macs < 1e-9, "macs {got}");
        let _ = SpanKind::Mxu;
    }
}
