//! The correctness oracle: textbook sequential Metropolis–Hastings.
//!
//! One sweep visits sites in checkerboard order (all black, then all
//! white) and applies the single-spin Metropolis acceptance
//! `min(1, exp(−2β·σᵢ·nn(i)))` — the transition kernel whose stationarity
//! the paper proves in its appendix. Run with site-keyed randomness it
//! makes the *same* flip decisions as every parallel implementation in
//! this crate; run with a bulk stream it is an independent sampler used
//! for statistical cross-checks.

use crate::lattice::Color;
use crate::prob::Randomness;
use crate::sampler::Sweeper;
use tpu_ising_bf16::Scalar;
use tpu_ising_rng::RandomUniform;
use tpu_ising_tensor::Plane;

/// Sequential checkerboard-ordered Metropolis sampler.
pub struct ReferenceIsing<S> {
    plane: Plane<S>,
    beta: f64,
    rng: Randomness,
    sweep_index: u64,
}

impl<S: Scalar + RandomUniform> ReferenceIsing<S> {
    /// Wrap an initial configuration.
    pub fn new(plane: Plane<S>, beta: f64, rng: Randomness) -> Self {
        ReferenceIsing { plane, beta, rng, sweep_index: 0 }
    }

    /// Immutable view of the configuration.
    pub fn plane(&self) -> &Plane<S> {
        &self.plane
    }

    /// Inverse temperature β.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Change β (for annealing schedules).
    pub fn set_beta(&mut self, beta: f64) {
        self.beta = beta;
    }

    /// Update all sites of one color, one site at a time.
    ///
    /// Within one color the sites do not interact, so the visit order is
    /// irrelevant — this is exactly why the parallel versions are valid.
    pub fn update_color(&mut self, color: Color) {
        let (h, w) = (self.plane.height(), self.plane.width());
        // Acceptance ratios computed with the same rounding pipeline the
        // tensor implementations use: nn·σ exactly, then ×(−2β) and exp at
        // storage precision.
        let m2b = S::from_f32((-2.0 * self.beta) as f32);
        for r in 0..h {
            for c in 0..w {
                if Color::of(r, c) != color {
                    continue;
                }
                let nn = self.plane.get_wrap(r as isize - 1, c as isize).to_f32()
                    + self.plane.get_wrap(r as isize + 1, c as isize).to_f32()
                    + self.plane.get_wrap(r as isize, c as isize - 1).to_f32()
                    + self.plane.get_wrap(r as isize, c as isize + 1).to_f32();
                let s = self.plane.get(r, c);
                let ratio = ((S::from_f32(nn) * s) * m2b).exp();
                let u: S = self.rng.site(self.sweep_index, color, r as u32, c as u32);
                if u < ratio {
                    self.plane.set(r, c, -s);
                }
            }
        }
    }
}

impl<S: Scalar + RandomUniform> Sweeper for ReferenceIsing<S> {
    fn sweep(&mut self) {
        self.update_color(Color::Black);
        self.update_color(Color::White);
        self.sweep_index += 1;
    }

    fn sites(&self) -> usize {
        self.plane.height() * self.plane.width()
    }

    fn magnetization_sum(&self) -> f64 {
        self.plane.sum_f64()
    }

    fn energy_sum(&self) -> f64 {
        crate::observables::energy_sum(&self.plane)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::{cold_plane, random_plane};

    #[test]
    fn zero_temperature_cold_lattice_is_frozen() {
        // β → ∞: flips from the all-up state have nn·σ = 4 > 0 ⇒
        // acceptance exp(−8β) ≈ 0.
        let mut r = ReferenceIsing::new(cold_plane::<f32>(8, 8), 50.0, Randomness::bulk(3));
        for _ in 0..10 {
            r.sweep();
        }
        assert_eq!(r.magnetization_sum(), 64.0);
    }

    #[test]
    fn infinite_temperature_randomizes() {
        // β = 0: every proposal accepted (ratio = exp(0) = 1 > u).
        let mut r = ReferenceIsing::new(cold_plane::<f32>(16, 16), 0.0, Randomness::bulk(4));
        r.sweep();
        // after one sweep every spin flipped once → all down
        assert_eq!(r.magnetization_sum(), -256.0);
        // after many sweeps with β=0 the state keeps alternating
        r.sweep();
        assert_eq!(r.magnetization_sum(), 256.0);
    }

    #[test]
    fn low_temperature_orders_high_temperature_disorders() {
        // cold start at low T stays magnetized; hot start at high T stays
        // disordered.
        let mut cold = ReferenceIsing::new(cold_plane::<f32>(16, 16), 1.0, Randomness::bulk(5));
        for _ in 0..50 {
            cold.sweep();
        }
        let m = cold.magnetization_sum() / 256.0;
        assert!(m > 0.9, "low-T magnetization {m}");

        let mut hot = ReferenceIsing::new(random_plane::<f32>(6, 16, 16), 0.2, Randomness::bulk(6));
        let mut acc = 0.0;
        for _ in 0..50 {
            hot.sweep();
            acc += (hot.magnetization_sum() / 256.0).abs();
        }
        assert!(acc / 50.0 < 0.3, "high-T |m| {}", acc / 50.0);
    }

    #[test]
    fn acceptance_table_is_metropolis() {
        // Directly verify the acceptance ratio values for each neighbor sum.
        let beta = 0.37f64;
        for nn in [-4.0f32, -2.0, 0.0, 2.0, 4.0] {
            for s in [-1.0f32, 1.0] {
                let expect = (-2.0 * beta as f32 * nn * s).exp();
                let got = ((nn * s) * (-2.0 * beta) as f32).exp();
                assert!((got - expect).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn sweeps_preserve_spin_values() {
        let mut r = ReferenceIsing::new(random_plane::<f32>(9, 12, 12), 0.44, Randomness::bulk(7));
        for _ in 0..5 {
            r.sweep();
        }
        assert!(r.plane().data().iter().all(|&s| s == 1.0 || s == -1.0));
    }
}
