//! Checkpoint / restore of a running simulation.
//!
//! Long chains (the paper's runs are 10⁶–8·10⁶ sweeps) need restartability.
//! A [`Checkpoint`] captures everything that determines the future of a
//! [`CompactIsing`] chain — configuration, temperature, sweep counter and
//! RNG state — as a serde-serializable value, and restoring it resumes the
//! chain **bit-exactly**: the resumed trajectory equals the uninterrupted
//! one (tested). Bulk-stream snapshots are taken at sweep boundaries,
//! where the Philox output buffer is empty by construction (every fill
//! resets it), so no entropy is lost or repeated.

use crate::compact::CompactIsing;
use crate::prob::{Randomness, RngState};
use crate::sampler::Sweeper;
use serde::{Deserialize, Serialize};
use tpu_ising_bf16::Scalar;
use tpu_ising_rng::RandomUniform;
use tpu_ising_tensor::Plane;

/// A serializable snapshot of a [`CompactIsing`] chain.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Format tag for forward compatibility.
    pub version: u32,
    /// Lattice height.
    pub height: usize,
    /// Lattice width.
    pub width: usize,
    /// Quarter-grid tile size.
    pub tile: usize,
    /// Inverse temperature.
    pub beta: f64,
    /// Sweeps completed.
    pub sweep_index: u64,
    /// Storage dtype name ("f32" or "bf16") — restoring at a different
    /// precision is rejected.
    pub dtype: String,
    /// Spin values in plane raster order (exact: spins are ±1).
    pub spins: Vec<f32>,
    /// Global window offset (distributed cores).
    pub row0: usize,
    /// Global window offset.
    pub col0: usize,
    /// RNG snapshot.
    pub rng: RngState,
}

/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Errors from [`restore`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestoreError(pub String);

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "checkpoint restore failed: {}", self.0)
    }
}

impl std::error::Error for RestoreError {}

/// Capture a chain's full state.
pub fn checkpoint<S: Scalar + RandomUniform>(sim: &CompactIsing<S>) -> Checkpoint {
    let plane = sim.to_plane();
    Checkpoint {
        version: CHECKPOINT_VERSION,
        height: plane.height(),
        width: plane.width(),
        tile: sim.quarter_shape()[2],
        beta: sim.beta(),
        sweep_index: sim.sweep_index(),
        dtype: S::DTYPE.to_string(),
        spins: plane.data().iter().map(|s| s.to_f32()).collect(),
        row0: sim.window_offset().0,
        col0: sim.window_offset().1,
        rng: sim.rng_state(),
    }
}

/// Rebuild a chain from a snapshot. The resumed chain continues the
/// uninterrupted trajectory exactly.
pub fn restore<S: Scalar + RandomUniform>(
    ckpt: &Checkpoint,
) -> Result<CompactIsing<S>, RestoreError> {
    if ckpt.version != CHECKPOINT_VERSION {
        return Err(RestoreError(format!("unsupported version {}", ckpt.version)));
    }
    if ckpt.dtype != S::DTYPE {
        return Err(RestoreError(format!(
            "checkpoint is {} but restore requested {}",
            ckpt.dtype,
            S::DTYPE
        )));
    }
    if ckpt.spins.len() != ckpt.height * ckpt.width {
        return Err(RestoreError("spin payload length mismatch".into()));
    }
    if ckpt.spins.iter().any(|&s| s != 1.0 && s != -1.0) {
        return Err(RestoreError("corrupt spin values (not ±1)".into()));
    }
    let plane =
        Plane::from_fn(ckpt.height, ckpt.width, |r, c| S::from_f32(ckpt.spins[r * ckpt.width + c]));
    let rng = Randomness::from_state(ckpt.rng);
    let mut sim =
        CompactIsing::from_plane_at(&plane, ckpt.tile, ckpt.beta, rng, ckpt.row0, ckpt.col0);
    sim.set_sweep_index(ckpt.sweep_index);
    Ok(sim)
}

/// Serialize a checkpoint to JSON.
pub fn to_json(ckpt: &Checkpoint) -> String {
    serde_json::to_string(ckpt).expect("checkpoint serialization cannot fail")
}

/// Deserialize a checkpoint from JSON.
pub fn from_json(s: &str) -> Result<Checkpoint, RestoreError> {
    serde_json::from_str(s).map_err(|e| RestoreError(format!("bad JSON: {e}")))
}

/// Run `sweeps` sweeps with a checkpoint taken every `every` sweeps,
/// returning the final stats-relevant magnetization and the last
/// checkpoint (a convenience driver for long jobs).
pub fn run_with_checkpoints<S: Scalar + RandomUniform>(
    sim: &mut CompactIsing<S>,
    sweeps: usize,
    every: usize,
) -> (f64, Checkpoint) {
    assert!(every > 0, "checkpoint interval must be positive");
    let mut last = checkpoint(sim);
    for i in 1..=sweeps {
        sim.sweep();
        if i % every == 0 {
            last = checkpoint(sim);
        }
    }
    (sim.magnetization_sum(), last)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::random_plane;
    use crate::T_CRITICAL;

    fn chain(seed: u64) -> CompactIsing<f32> {
        let init = random_plane::<f32>(seed, 16, 16);
        CompactIsing::from_plane(&init, 4, 1.0 / T_CRITICAL, Randomness::bulk(seed))
    }

    #[test]
    fn resume_equals_uninterrupted_bulk() {
        let mut uninterrupted = chain(7);
        for _ in 0..12 {
            uninterrupted.sweep();
        }

        let mut first_half = chain(7);
        for _ in 0..5 {
            first_half.sweep();
        }
        let ckpt = checkpoint(&first_half);
        let mut resumed: CompactIsing<f32> = restore(&ckpt).unwrap();
        for _ in 0..7 {
            resumed.sweep();
        }
        assert_eq!(resumed.to_plane(), uninterrupted.to_plane());
        assert_eq!(resumed.sweep_index(), uninterrupted.sweep_index());
    }

    #[test]
    fn resume_equals_uninterrupted_site_keyed() {
        let init = random_plane::<f32>(3, 8, 8);
        let mut a = CompactIsing::from_plane(&init, 2, 0.5, Randomness::site_keyed(9));
        for _ in 0..10 {
            a.sweep();
        }
        let mut b = CompactIsing::from_plane(&init, 2, 0.5, Randomness::site_keyed(9));
        for _ in 0..4 {
            b.sweep();
        }
        let mut b: CompactIsing<f32> = restore(&checkpoint(&b)).unwrap();
        for _ in 0..6 {
            b.sweep();
        }
        assert_eq!(a.to_plane(), b.to_plane());
    }

    #[test]
    fn json_roundtrip_preserves_trajectory() {
        let mut sim = chain(11);
        for _ in 0..3 {
            sim.sweep();
        }
        let json = to_json(&checkpoint(&sim));
        let ckpt = from_json(&json).unwrap();
        let mut restored: CompactIsing<f32> = restore(&ckpt).unwrap();
        sim.sweep();
        restored.sweep();
        assert_eq!(sim.to_plane(), restored.to_plane());
    }

    #[test]
    fn dtype_mismatch_is_rejected() {
        let sim = chain(1);
        let ckpt = checkpoint(&sim);
        let err = match restore::<tpu_ising_bf16::Bf16>(&ckpt) {
            Err(e) => e,
            Ok(_) => panic!("dtype mismatch must be rejected"),
        };
        assert!(err.to_string().contains("bf16"));
    }

    #[test]
    fn corrupt_payloads_are_rejected() {
        let sim = chain(2);
        let mut ckpt = checkpoint(&sim);
        ckpt.spins[0] = 0.5;
        assert!(restore::<f32>(&ckpt).is_err());
        let mut ckpt = checkpoint(&sim);
        ckpt.spins.pop();
        assert!(restore::<f32>(&ckpt).is_err());
        let mut ckpt = checkpoint(&sim);
        ckpt.version = 99;
        assert!(restore::<f32>(&ckpt).is_err());
    }

    #[test]
    fn run_with_checkpoints_driver() {
        let mut sim = chain(5);
        let (m, ckpt) = run_with_checkpoints(&mut sim, 10, 4);
        assert_eq!(ckpt.sweep_index, 8); // last multiple of 4
        assert_eq!(m, sim.magnetization_sum());
        // resuming the sweep-8 checkpoint for 2 sweeps reaches the same state
        let mut resumed: CompactIsing<f32> = restore(&ckpt).unwrap();
        resumed.sweep();
        resumed.sweep();
        assert_eq!(resumed.to_plane(), sim.to_plane());
    }
}
