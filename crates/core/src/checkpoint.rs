//! Checkpoint / restore of a running simulation.
//!
//! Long chains (the paper's runs are 10⁶–8·10⁶ sweeps) need restartability.
//! A [`Checkpoint`] captures everything that determines the future of a
//! [`CompactIsing`] chain — configuration, temperature, sweep counter and
//! RNG state — as a serde-serializable value, and restoring it resumes the
//! chain **bit-exactly**: the resumed trajectory equals the uninterrupted
//! one (tested). Bulk-stream snapshots are taken at sweep boundaries,
//! where the Philox output buffer is empty by construction (every fill
//! resets it), so no entropy is lost or repeated.

use crate::compact::CompactIsing;
use crate::prob::{Randomness, RngState};
use crate::sampler::Sweeper;
use serde::{Deserialize, Serialize};
use tpu_ising_bf16::Scalar;
use tpu_ising_rng::RandomUniform;
use tpu_ising_tensor::{KernelBackend, Plane};

/// A serializable snapshot of a [`CompactIsing`] chain.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Format tag for forward compatibility.
    pub version: u32,
    /// Lattice height.
    pub height: usize,
    /// Lattice width.
    pub width: usize,
    /// Quarter-grid tile size.
    pub tile: usize,
    /// Inverse temperature.
    pub beta: f64,
    /// Sweeps completed.
    pub sweep_index: u64,
    /// Storage dtype name ("f32" or "bf16") — restoring at a different
    /// precision is rejected.
    pub dtype: String,
    /// Spin values in plane raster order (exact: spins are ±1).
    pub spins: Vec<f32>,
    /// Global window offset (distributed cores).
    pub row0: usize,
    /// Global window offset.
    pub col0: usize,
    /// RNG snapshot.
    pub rng: RngState,
    /// Neighbor-sum kernel backend name ("dense" or "band"). Snapshots
    /// written before this field existed restore onto the default backend
    /// (the trajectories are bit-identical either way; only speed differs).
    #[serde(default = "default_backend_name")]
    pub backend: String,
}

// Referenced by the `#[serde(default = ...)]` attribute above; the allow
// covers builds whose (stubbed) derive does not expand that reference.
#[allow(dead_code)]
fn default_backend_name() -> String {
    KernelBackend::default().name().to_string()
}

/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Errors from [`restore`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestoreError(pub String);

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "checkpoint restore failed: {}", self.0)
    }
}

impl std::error::Error for RestoreError {}

/// Capture a chain's full state.
pub fn checkpoint<S: Scalar + RandomUniform>(sim: &CompactIsing<S>) -> Checkpoint {
    let plane = sim.to_plane();
    Checkpoint {
        version: CHECKPOINT_VERSION,
        height: plane.height(),
        width: plane.width(),
        tile: sim.quarter_shape()[2],
        beta: sim.beta(),
        sweep_index: sim.sweep_index(),
        dtype: S::DTYPE.to_string(),
        spins: plane.data().iter().map(|s| s.to_f32()).collect(),
        row0: sim.window_offset().0,
        col0: sim.window_offset().1,
        rng: sim.rng_state(),
        backend: sim.backend().name().to_string(),
    }
}

/// Rebuild a chain from a snapshot. The resumed chain continues the
/// uninterrupted trajectory exactly.
pub fn restore<S: Scalar + RandomUniform>(
    ckpt: &Checkpoint,
) -> Result<CompactIsing<S>, RestoreError> {
    if ckpt.version != CHECKPOINT_VERSION {
        return Err(RestoreError(format!("unsupported version {}", ckpt.version)));
    }
    if ckpt.dtype != S::DTYPE {
        return Err(RestoreError(format!(
            "checkpoint is {} but restore requested {}",
            ckpt.dtype,
            S::DTYPE
        )));
    }
    if ckpt.spins.len() != ckpt.height * ckpt.width {
        return Err(RestoreError("spin payload length mismatch".into()));
    }
    if ckpt.spins.iter().any(|&s| s != 1.0 && s != -1.0) {
        return Err(RestoreError("corrupt spin values (not ±1)".into()));
    }
    let plane =
        Plane::from_fn(ckpt.height, ckpt.width, |r, c| S::from_f32(ckpt.spins[r * ckpt.width + c]));
    let backend: KernelBackend = ckpt.backend.parse().map_err(RestoreError)?;
    let rng = Randomness::from_state(ckpt.rng);
    let mut sim =
        CompactIsing::from_plane_at(&plane, ckpt.tile, ckpt.beta, rng, ckpt.row0, ckpt.col0)
            .with_backend(backend);
    sim.set_sweep_index(ckpt.sweep_index);
    Ok(sim)
}

/// Serialize a checkpoint to JSON. Serializer failures (e.g. the offline
/// stub harness) surface as a typed [`RestoreError`] instead of panicking
/// the recovery path that asked for the snapshot.
pub fn to_json(ckpt: &Checkpoint) -> Result<String, RestoreError> {
    serde_json::to_string(ckpt).map_err(|e| RestoreError(format!("serialize failed: {e}")))
}

/// Deserialize a checkpoint from JSON.
pub fn from_json(s: &str) -> Result<Checkpoint, RestoreError> {
    serde_json::from_str(s).map_err(|e| RestoreError(format!("bad JSON: {e}")))
}

/// Run `sweeps` sweeps with a checkpoint taken every `every` sweeps,
/// returning the final stats-relevant magnetization and the last
/// checkpoint (a convenience driver for long jobs). The returned
/// checkpoint always reflects the *final* state, even when `sweeps` is
/// not a multiple of `every`.
pub fn run_with_checkpoints<S: Scalar + RandomUniform>(
    sim: &mut CompactIsing<S>,
    sweeps: usize,
    every: usize,
) -> (f64, Checkpoint) {
    assert!(every > 0, "checkpoint interval must be positive");
    let mut last = checkpoint(sim);
    for i in 1..=sweeps {
        sim.sweep();
        if i % every == 0 {
            last = checkpoint(sim);
        }
    }
    if last.sweep_index != sim.sweep_index() {
        last = checkpoint(sim);
    }
    (sim.magnetization_sum(), last)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::random_plane;
    use crate::T_CRITICAL;

    fn chain(seed: u64) -> CompactIsing<f32> {
        let init = random_plane::<f32>(seed, 16, 16);
        CompactIsing::from_plane(&init, 4, 1.0 / T_CRITICAL, Randomness::bulk(seed))
    }

    /// The offline dev container stubs `serde_json` out; JSON assertions
    /// only run where real serde is available (CI, workstations).
    fn serde_is_real() -> bool {
        serde_json::to_string(&7u32).map(|s| s == "7").unwrap_or(false)
    }

    /// JSON round-trip where serde is real, identity otherwise.
    fn maybe_json_roundtrip(ckpt: Checkpoint) -> Checkpoint {
        if serde_is_real() {
            from_json(&to_json(&ckpt).unwrap()).unwrap()
        } else {
            ckpt
        }
    }

    #[test]
    fn resume_equals_uninterrupted_bulk() {
        let mut uninterrupted = chain(7);
        for _ in 0..12 {
            uninterrupted.sweep();
        }

        let mut first_half = chain(7);
        for _ in 0..5 {
            first_half.sweep();
        }
        let ckpt = checkpoint(&first_half);
        let mut resumed: CompactIsing<f32> = restore(&ckpt).unwrap();
        for _ in 0..7 {
            resumed.sweep();
        }
        assert_eq!(resumed.to_plane(), uninterrupted.to_plane());
        assert_eq!(resumed.sweep_index(), uninterrupted.sweep_index());
    }

    #[test]
    fn resume_equals_uninterrupted_site_keyed() {
        let init = random_plane::<f32>(3, 8, 8);
        let mut a = CompactIsing::from_plane(&init, 2, 0.5, Randomness::site_keyed(9));
        for _ in 0..10 {
            a.sweep();
        }
        let mut b = CompactIsing::from_plane(&init, 2, 0.5, Randomness::site_keyed(9));
        for _ in 0..4 {
            b.sweep();
        }
        let mut b: CompactIsing<f32> = restore(&checkpoint(&b)).unwrap();
        for _ in 0..6 {
            b.sweep();
        }
        assert_eq!(a.to_plane(), b.to_plane());
    }

    #[test]
    fn json_roundtrip_preserves_trajectory() {
        if !serde_is_real() {
            return;
        }
        let mut sim = chain(11);
        for _ in 0..3 {
            sim.sweep();
        }
        let json = to_json(&checkpoint(&sim)).unwrap();
        let ckpt = from_json(&json).unwrap();
        let mut restored: CompactIsing<f32> = restore(&ckpt).unwrap();
        sim.sweep();
        restored.sweep();
        assert_eq!(sim.to_plane(), restored.to_plane());
    }

    #[test]
    fn dtype_mismatch_is_rejected() {
        let sim = chain(1);
        let ckpt = checkpoint(&sim);
        let err = match restore::<tpu_ising_bf16::Bf16>(&ckpt) {
            Err(e) => e,
            Ok(_) => panic!("dtype mismatch must be rejected"),
        };
        assert!(err.to_string().contains("bf16"));
    }

    #[test]
    fn corrupt_payloads_are_rejected() {
        let sim = chain(2);
        let mut ckpt = checkpoint(&sim);
        ckpt.spins[0] = 0.5;
        assert!(restore::<f32>(&ckpt).is_err());
        let mut ckpt = checkpoint(&sim);
        ckpt.spins.pop();
        assert!(restore::<f32>(&ckpt).is_err());
        let mut ckpt = checkpoint(&sim);
        ckpt.version = 99;
        assert!(restore::<f32>(&ckpt).is_err());
    }

    #[test]
    fn run_with_checkpoints_driver() {
        let mut sim = chain(5);
        let (m, ckpt) = run_with_checkpoints(&mut sim, 10, 4);
        // 10 % 4 != 0: a final checkpoint must still capture sweep 10,
        // not the stale sweep-8 snapshot.
        assert_eq!(ckpt.sweep_index, 10);
        assert_eq!(m, sim.magnetization_sum());
        let resumed: CompactIsing<f32> = restore(&ckpt).unwrap();
        assert_eq!(resumed.to_plane(), sim.to_plane());
        // and an aligned run returns the in-loop snapshot unchanged
        let mut sim = chain(5);
        let (_, ckpt) = run_with_checkpoints(&mut sim, 8, 4);
        assert_eq!(ckpt.sweep_index, 8);
    }

    #[test]
    fn restore_preserves_kernel_backend() {
        let mut sim = chain(23).with_backend(KernelBackend::Dense);
        sim.sweep();
        let ckpt = checkpoint(&sim);
        assert_eq!(ckpt.backend, "dense");
        let restored: CompactIsing<f32> = restore(&ckpt).unwrap();
        assert_eq!(restored.backend(), KernelBackend::Dense);
        // and through JSON
        let restored: CompactIsing<f32> = restore(&maybe_json_roundtrip(ckpt.clone())).unwrap();
        assert_eq!(restored.backend(), KernelBackend::Dense);
        // unknown backend strings are rejected, not silently defaulted
        let mut bad = ckpt.clone();
        bad.backend = "quantum".into();
        assert!(restore::<f32>(&bad).is_err());
    }

    #[test]
    fn old_snapshots_without_backend_field_restore_on_default() {
        if !serde_is_real() {
            return;
        }
        let mut sim = chain(29);
        sim.sweep();
        let json = to_json(&checkpoint(&sim)).unwrap();
        // simulate a pre-backend-field snapshot by stripping the field
        let stripped = json.replace(",\"backend\":\"band\"", "");
        assert_ne!(stripped, json, "serialized snapshot should carry the backend field");
        let ckpt = from_json(&stripped).unwrap();
        assert_eq!(ckpt.backend, KernelBackend::default().name());
        let restored: CompactIsing<f32> = restore(&ckpt).unwrap();
        assert_eq!(restored.backend(), KernelBackend::default());
    }

    #[test]
    fn bf16_checkpoint_roundtrips_bitwise() {
        use tpu_ising_bf16::Bf16;
        let init = random_plane::<Bf16>(17, 16, 16);
        let mut uninterrupted =
            CompactIsing::from_plane(&init, 4, 1.0 / T_CRITICAL, Randomness::bulk(17));
        let mut first_half =
            CompactIsing::from_plane(&init, 4, 1.0 / T_CRITICAL, Randomness::bulk(17));
        for _ in 0..10 {
            uninterrupted.sweep();
        }
        for _ in 0..4 {
            first_half.sweep();
        }
        let ckpt = checkpoint(&first_half);
        assert_eq!(ckpt.dtype, "bf16");
        // through JSON, like a real resume from disk
        let mut resumed: CompactIsing<Bf16> = restore(&maybe_json_roundtrip(ckpt)).unwrap();
        for _ in 0..6 {
            resumed.sweep();
        }
        assert_eq!(resumed.to_plane(), uninterrupted.to_plane());
        assert_eq!(resumed.sweep_index(), uninterrupted.sweep_index());
    }

    #[test]
    fn bf16_site_keyed_checkpoint_roundtrips_bitwise() {
        use tpu_ising_bf16::Bf16;
        let init = random_plane::<Bf16>(41, 8, 8);
        let mut a = CompactIsing::from_plane(&init, 2, 0.6, Randomness::site_keyed(41));
        let mut b = CompactIsing::from_plane(&init, 2, 0.6, Randomness::site_keyed(41));
        for _ in 0..8 {
            a.sweep();
        }
        for _ in 0..3 {
            b.sweep();
        }
        let mut b: CompactIsing<Bf16> = restore(&maybe_json_roundtrip(checkpoint(&b))).unwrap();
        for _ in 0..5 {
            b.sweep();
        }
        assert_eq!(a.to_plane(), b.to_plane());
    }
}
