//! Property-based tests of the core update invariants, over random
//! lattice shapes, seeds and temperatures.

use proptest::prelude::*;
use tpu_ising_core::checkpoint::{checkpoint, from_json, restore, to_json};
use tpu_ising_core::{
    random_plane, Color, CompactIsing, ConvIsing, KernelBackend, NaiveIsing, Randomness, Sweeper,
};
use tpu_ising_tensor::Plane;

/// Strategy: (height, width, tile) with 2·tile | height, width.
fn geometry() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..4, 1usize..4, prop_oneof![Just(1usize), Just(2), Just(4)])
        .prop_map(|(m, n, t)| (2 * t * m, 2 * t * n, t))
}

fn backend() -> impl Strategy<Value = KernelBackend> {
    prop_oneof![Just(KernelBackend::Dense), Just(KernelBackend::Band)]
}

fn rng_for(site_keyed: bool, seed: u64) -> Randomness {
    if site_keyed {
        Randomness::site_keyed(seed)
    } else {
        Randomness::bulk(seed)
    }
}

fn is_spin_plane(p: &Plane<f32>) -> bool {
    p.data().iter().all(|&s| s == 1.0 || s == -1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn compact_neighbor_sums_match_bruteforce_for_any_geometry(
        (h, w, tile) in geometry(),
        seed in 0u64..1000,
    ) {
        let plane = random_plane::<f32>(seed, h, w);
        let sim = CompactIsing::from_plane(&plane, tile, 0.4, Randomness::bulk(0));
        let nn = plane.neighbor_sum_periodic();
        let parts = nn.deinterleave();
        let (nn0, nn1) = sim.neighbor_sums(Color::Black, &sim.local_halos(Color::Black));
        prop_assert_eq!(&nn0, &parts[0].to_tiles(tile));
        prop_assert_eq!(&nn1, &parts[3].to_tiles(tile));
        let (nn0, nn1) = sim.neighbor_sums(Color::White, &sim.local_halos(Color::White));
        prop_assert_eq!(&nn0, &parts[1].to_tiles(tile));
        prop_assert_eq!(&nn1, &parts[2].to_tiles(tile));
    }

    #[test]
    fn sweeps_preserve_spin_domain(
        (h, w, tile) in geometry(),
        seed in 0u64..1000,
        beta in 0.0f64..2.0,
    ) {
        let plane = random_plane::<f32>(seed, h, w);
        let mut sim = CompactIsing::from_plane(&plane, tile, beta, Randomness::bulk(seed));
        for _ in 0..3 {
            sim.sweep();
        }
        prop_assert!(is_spin_plane(&sim.to_plane()));
    }

    #[test]
    fn implementations_agree_for_any_geometry_and_temperature(
        (h, w, tile) in geometry(),
        seed in 0u64..1000,
        beta in 0.0f64..1.5,
    ) {
        let plane = random_plane::<f32>(seed, h, w);
        let mut compact =
            CompactIsing::from_plane(&plane, tile, beta, Randomness::site_keyed(seed));
        let mut conv = ConvIsing::new(plane.clone(), beta, Randomness::site_keyed(seed));
        for _ in 0..3 {
            compact.sweep();
            conv.sweep();
        }
        prop_assert_eq!(&compact.to_plane(), conv.plane());
    }

    #[test]
    fn naive_agrees_when_tile_is_even(
        m in 1usize..3,
        n in 1usize..3,
        seed in 0u64..1000,
        beta in 0.0f64..1.5,
    ) {
        // naive needs an even tile for its parity mask
        let (tile, h, w) = (2usize, 4 * m, 4 * n);
        let plane = random_plane::<f32>(seed, h, w);
        let mut naive = NaiveIsing::from_plane(&plane, tile, beta, Randomness::site_keyed(seed));
        let mut conv = ConvIsing::new(plane, beta, Randomness::site_keyed(seed));
        for _ in 0..3 {
            naive.sweep();
            conv.sweep();
        }
        prop_assert_eq!(&naive.to_plane(), conv.plane());
    }

    #[test]
    fn black_update_touches_only_black_sites(
        (h, w, tile) in geometry(),
        seed in 0u64..1000,
    ) {
        let plane = random_plane::<f32>(seed, h, w);
        let mut sim = CompactIsing::from_plane(&plane, tile, 0.3, Randomness::bulk(seed));
        let halos = sim.local_halos(Color::Black);
        sim.update_color(Color::Black, &halos);
        let after = sim.to_plane();
        for r in 0..h {
            for c in 0..w {
                if (r + c) % 2 == 1 {
                    prop_assert_eq!(after.get(r, c), plane.get(r, c), "white site ({}, {}) moved", r, c);
                }
            }
        }
    }

    #[test]
    fn magnetization_flips_sign_under_global_spin_flip(
        (h, w, tile) in geometry(),
        seed in 0u64..1000,
        beta in 0.1f64..1.0,
    ) {
        // Z2 symmetry: evolving −σ with the same uniforms mirrors σ (the
        // acceptance depends on σ·nn which is Z2-invariant), so the
        // magnetization trajectory negates exactly.
        let plane = random_plane::<f32>(seed, h, w);
        let flipped = Plane::from_fn(h, w, |r, c| -plane.get(r, c));
        let mut a = CompactIsing::from_plane(&plane, tile, beta, Randomness::site_keyed(seed));
        let mut b = CompactIsing::from_plane(&flipped, tile, beta, Randomness::site_keyed(seed));
        for _ in 0..3 {
            a.sweep();
            b.sweep();
        }
        prop_assert!((a.magnetization_sum() + b.magnetization_sum()).abs() < 1e-9);
        prop_assert!((a.energy_sum() - b.energy_sum()).abs() < 1e-9);
    }

    #[test]
    fn compact_band_backend_bit_equals_dense(
        (h, w, tile) in geometry(),
        seed in 0u64..1000,
        beta in 0.0f64..1.5,
    ) {
        let plane = random_plane::<f32>(seed, h, w);
        let mut dense = CompactIsing::from_plane(&plane, tile, beta, Randomness::bulk(seed))
            .with_backend(KernelBackend::Dense);
        let mut band = CompactIsing::from_plane(&plane, tile, beta, Randomness::bulk(seed))
            .with_backend(KernelBackend::Band);
        for _ in 0..3 {
            dense.sweep();
            band.sweep();
        }
        prop_assert_eq!(&dense.to_plane(), &band.to_plane());
    }

    #[test]
    fn compact_band_backend_bit_equals_dense_bf16(
        (h, w, tile) in geometry(),
        seed in 0u64..1000,
        beta in 0.0f64..1.5,
    ) {
        // bf16 rounding must be identical too, not just close
        let plane = random_plane::<tpu_ising_bf16::Bf16>(seed, h, w);
        let mut dense = CompactIsing::from_plane(&plane, tile, beta, Randomness::bulk(seed))
            .with_backend(KernelBackend::Dense);
        let mut band = CompactIsing::from_plane(&plane, tile, beta, Randomness::bulk(seed))
            .with_backend(KernelBackend::Band);
        for _ in 0..3 {
            dense.sweep();
            band.sweep();
        }
        prop_assert_eq!(&dense.to_plane(), &band.to_plane());
    }

    #[test]
    fn checkpoint_json_roundtrip_preserves_trajectory(
        (h, w, tile) in geometry(),
        seed in 0u64..1000,
        beta in 0.1f64..1.5,
        backend in backend(),
        site_keyed in any::<bool>(),
    ) {
        // A checkpoint serialized to JSON, parsed back and restored must
        // continue the exact trajectory of the uninterrupted chain — for
        // any geometry, tile, kernel backend and RNG mode.
        let plane = random_plane::<f32>(seed, h, w);
        let mut live = CompactIsing::from_plane(&plane, tile, beta, rng_for(site_keyed, seed))
            .with_backend(backend);
        for _ in 0..3 {
            live.sweep();
        }
        let snap = from_json(&to_json(&checkpoint(&live)).expect("serialize")).expect("json roundtrip");
        let mut resumed = restore::<f32>(&snap).expect("restore");
        prop_assert_eq!(resumed.backend(), backend);
        for _ in 0..3 {
            live.sweep();
            resumed.sweep();
        }
        prop_assert_eq!(&live.to_plane(), &resumed.to_plane());
        prop_assert_eq!(live.sweep_index(), resumed.sweep_index());
    }

    #[test]
    fn naive_band_backend_bit_equals_dense(
        m in 1usize..3,
        n in 1usize..3,
        seed in 0u64..1000,
        beta in 0.0f64..1.5,
    ) {
        // the naive sweeper's tridiagonal K products, periodic edges
        // compensated explicitly
        let (tile, h, w) = (2usize, 4 * m, 4 * n);
        let plane = random_plane::<f32>(seed, h, w);
        let mut dense = NaiveIsing::from_plane(&plane, tile, beta, Randomness::bulk(seed))
            .with_backend(KernelBackend::Dense);
        let mut band = NaiveIsing::from_plane(&plane, tile, beta, Randomness::bulk(seed))
            .with_backend(KernelBackend::Band);
        for _ in 0..3 {
            dense.sweep();
            band.sweep();
        }
        prop_assert_eq!(&dense.to_plane(), &band.to_plane());
    }
}

// ---------------------------------------------------------------------
// Vault integrity: any corruption at any offset is detected on load and
// the fallback generation restores a bit-exact trajectory.
// ---------------------------------------------------------------------

mod vault_props {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use tpu_ising_bf16::Bf16;
    use tpu_ising_core::chaos::{apply_corruption, VaultCorruption};
    use tpu_ising_core::vault::{Vault, VaultError};
    use tpu_ising_core::MultiSpinIsing;

    static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

    /// A unique scratch directory per proptest case, removed on drop.
    pub struct Scratch(pub std::path::PathBuf);

    impl Scratch {
        pub fn new() -> Scratch {
            let dir = std::env::temp_dir().join(format!(
                "tpu-ising-vault-prop-{}-{}",
                std::process::id(),
                DIR_SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&dir).unwrap();
            Scratch(dir)
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    pub fn corruption() -> impl Strategy<Value = VaultCorruption> {
        prop_oneof![
            (0u16..1000).prop_map(|permille| VaultCorruption::Truncate { permille }),
            (0u16..1000, 0u8..8)
                .prop_map(|(permille, bit)| VaultCorruption::BitFlip { permille, bit }),
            Just(VaultCorruption::TornHeader),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn corrupting_the_newest_generation_never_loses_the_older_one(
            payload in "[ -~]{1,400}",
            older in 0u64..1000,
            gap in 1u64..100,
            corruption in corruption(),
        ) {
            let tmp = Scratch::new();
            let vault = Vault::new(&tmp.0, "prop", 3).unwrap();
            vault.save("pod", older, &payload).expect("save older");
            vault.save("pod", older + gap, "{\"newest\":true}").expect("save newest");
            apply_corruption(&vault.generation_path(older + gap), corruption).unwrap();
            match vault.load_latest("pod") {
                Ok(loaded) => {
                    // Either the corruption landed in a spot the envelope
                    // detects (fallback to the older generation, payload
                    // byte-identical) — or, for Truncate{permille:999} on
                    // tiny files, the file happens to be unchanged.
                    if loaded.sweep == older {
                        prop_assert_eq!(loaded.payload, payload);
                        prop_assert_eq!(loaded.quarantined.len(), 1);
                    } else {
                        prop_assert_eq!(loaded.sweep, older + gap);
                        prop_assert_eq!(loaded.payload, "{\"newest\":true}");
                        prop_assert!(loaded.quarantined.is_empty());
                    }
                }
                Err(e) => prop_assert!(false, "older generation lost: {}", e),
            }
        }

        #[test]
        fn bit_flips_anywhere_in_a_generation_are_always_detected(
            payload in "[ -~]{1,200}",
            sweep in 0u64..10_000,
            pos_permille in 0u16..1000,
            bit in 0u8..8,
        ) {
            let tmp = Scratch::new();
            let vault = Vault::new(&tmp.0, "prop", 1).unwrap();
            let path = vault.save("pod", sweep, &payload).expect("save");
            apply_corruption(&path, VaultCorruption::BitFlip { permille: pos_permille, bit }).unwrap();
            match vault.load_latest("pod") {
                Err(VaultError::NoValidGeneration { quarantined, .. }) => {
                    prop_assert_eq!(quarantined.len(), 1);
                }
                other => prop_assert!(
                    false,
                    "flipped bit {} at {}‰ not detected: {:?}",
                    bit,
                    pos_permille,
                    other
                ),
            }
        }

        #[test]
        fn vaulted_bf16_checkpoint_survives_corruption_bit_exactly(
            seed in 0u64..500,
            beta in 0.0f64..1.2,
            corruption in corruption(),
        ) {
            // The full durability cycle on a real bf16 engine snapshot:
            // checkpoint → vault → newer generation corrupted → fallback →
            // restore → identical trajectory to the uninterrupted run.
            let (h, w, tile) = (8usize, 8, 2);
            let plane = random_plane::<Bf16>(seed, h, w);
            let mut live = CompactIsing::from_plane(&plane, tile, beta, Randomness::site_keyed(seed));
            live.sweep();
            let json = to_json(&checkpoint(&live)).expect("serialize");
            let tmp = Scratch::new();
            let vault = Vault::new(&tmp.0, "bf16", 2).unwrap();
            vault.save("pod", 1, &json).expect("save good");
            live.sweep();
            let newer = vault
                .save("pod", 2, &to_json(&checkpoint(&live)).expect("serialize"))
                .expect("save newer");
            apply_corruption(&newer, corruption).unwrap();
            let loaded = vault.load_latest("pod").expect("an intact generation must survive");
            let snap = from_json(&loaded.payload).expect("fallback payload parses");
            let mut resumed = restore::<Bf16>(&snap).expect("restore");
            // Re-play the uninterrupted run up to the recovered sweep, then
            // advance both: site-keyed RNG makes them bit-identical.
            let mut fresh = CompactIsing::from_plane(&plane, tile, beta, Randomness::site_keyed(seed));
            for _ in 0..loaded.sweep {
                fresh.sweep();
            }
            for _ in 0..2 {
                fresh.sweep();
                resumed.sweep();
            }
            prop_assert_eq!(&fresh.to_plane(), &resumed.to_plane());
        }

        #[test]
        fn vaulted_multispin_checkpoint_survives_corruption_bit_exactly(
            seed in 0u64..500,
            beta in 0.0f64..1.2,
            corruption in corruption(),
        ) {
            let (h, w) = (6usize, 6);
            let mut live = MultiSpinIsing::new(h, w, beta, seed);
            live.sweep();
            let json = serde_json::to_string(&live.checkpoint()).expect("serialize");
            let tmp = Scratch::new();
            let vault = Vault::new(&tmp.0, "ms", 2).unwrap();
            vault.save("multispin-pod", 1, &json).expect("save good");
            live.sweep();
            let newer = vault
                .save(
                    "multispin-pod",
                    2,
                    &serde_json::to_string(&live.checkpoint()).expect("serialize"),
                )
                .expect("save newer");
            apply_corruption(&newer, corruption).unwrap();
            let loaded =
                vault.load_latest("multispin-pod").expect("an intact generation must survive");
            let snap = serde_json::from_str(&loaded.payload).expect("fallback payload parses");
            let mut resumed = MultiSpinIsing::restore(&snap).expect("restore");
            let mut fresh = MultiSpinIsing::new(h, w, beta, seed);
            for _ in 0..loaded.sweep {
                fresh.sweep();
            }
            for _ in 0..2 {
                fresh.sweep();
                resumed.sweep();
            }
            prop_assert_eq!(fresh.to_words(), resumed.to_words());
        }
    }
}
