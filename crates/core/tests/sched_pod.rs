//! Pod-level drills for the cooperative work-stealing mesh runtime.
//!
//! The device crate proves the scheduler's own invariants (virtual clock,
//! steal fairness, 2048 tasks on 4 workers); these tests prove the claims
//! that matter at the *simulation* level:
//!
//! - the coop runtime is **bit-exact** against the thread-per-core mesh on
//!   the paper's differential topologies (2×2, 1×4), for both the compact
//!   scalar engine and the bit-packed multispin engine;
//! - trajectories are independent of the worker count (1, 4, host);
//! - a 1024-core pod (32×32) runs on a laptop-class host and is
//!   topology-transparent against a 16×64 reshaping of the same lattice;
//! - checkpoints reshape across awkward tori (3×5 → 5×3 → 1×15) under the
//!   coop runtime;
//! - a chaos drill that kills 1% of a 1024-core pod mid-run still resumes
//!   bit-exact from the vault.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

use tpu_ising_core::{
    run_chaos_engine_rt, run_multispin_pod_with_opts, run_pod_resilient, run_pod_with_opts,
    ChaosPlan, CompactIsing, IntegrityKnobs, KernelBackend, MultiSpinPodConfig, MultiSpinPodResult,
    MultiSpinPodRunOpts, PodConfig, PodResult, PodRng, PodRunOpts, ResilienceOpts,
};
use tpu_ising_device::{MeshConfig, MeshRuntime, Torus};

fn serde_is_real() -> bool {
    serde_json::to_string(&7u32).map(|s| s == "7").unwrap_or(false)
}

static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

/// A unique scratch directory per test, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!(
            "tpu-ising-sched-pod-{}-{}-{tag}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn pod_cfg(nx: usize, ny: usize, h: usize, w: usize, tile: usize, seed: u64) -> PodConfig {
    PodConfig {
        torus: Torus::new(nx, ny),
        per_core_h: h,
        per_core_w: w,
        tile,
        beta: 0.44,
        seed,
        rng: PodRng::SiteKeyed,
        backend: KernelBackend::Band,
    }
}

fn runtime_opts(runtime: MeshRuntime) -> PodRunOpts<'static> {
    PodRunOpts { mesh: MeshConfig { runtime, ..MeshConfig::default() }, ..PodRunOpts::default() }
}

fn run_compact(cfg: &PodConfig, sweeps: usize, runtime: MeshRuntime) -> PodResult<f32> {
    run_pod_with_opts::<f32>(cfg, sweeps, &runtime_opts(runtime)).expect("pod run")
}

fn run_multispin(
    cfg: &MultiSpinPodConfig,
    sweeps: usize,
    runtime: MeshRuntime,
) -> MultiSpinPodResult {
    let opts = MultiSpinPodRunOpts {
        mesh: MeshConfig { runtime, ..MeshConfig::default() },
        ..MultiSpinPodRunOpts::default()
    };
    run_multispin_pod_with_opts(cfg, sweeps, &opts).expect("multispin pod run")
}

// ---------------------------------------------------------------------
// Differential: coop vs thread-per-core, bit for bit
// ---------------------------------------------------------------------

#[test]
fn coop_matches_thread_mesh_bit_exact_for_compact_pods() {
    for (nx, ny, h, w) in [(2usize, 2usize, 8usize, 8usize), (1, 4, 16, 4)] {
        let cfg = pod_cfg(nx, ny, h, w, 2, 4242);
        let threads = run_compact(&cfg, 5, MeshRuntime::Threads);
        let coop = run_compact(&cfg, 5, MeshRuntime::coop());
        assert_eq!(
            threads.magnetization_sums, coop.magnetization_sums,
            "magnetization trace diverged on {nx}x{ny}"
        );
        assert_eq!(threads.final_plane, coop.final_plane, "final plane diverged on {nx}x{ny}");
    }
}

#[test]
fn coop_matches_thread_mesh_bit_exact_for_multispin_pods() {
    for (nx, ny, h, w) in [(2usize, 2usize, 4usize, 4usize), (1, 4, 8, 2)] {
        let cfg = MultiSpinPodConfig {
            torus: Torus::new(nx, ny),
            per_core_h: h,
            per_core_w: w,
            beta: 0.45,
            seed: 97,
        };
        let threads = run_multispin(&cfg, 5, MeshRuntime::Threads);
        let coop = run_multispin(&cfg, 5, MeshRuntime::coop());
        assert_eq!(
            threads.replica_magnetizations, coop.replica_magnetizations,
            "replica traces diverged on {nx}x{ny}"
        );
        assert_eq!(threads.final_words, coop.final_words, "packed lattice diverged on {nx}x{ny}");
        assert_eq!((threads.height, threads.width), (coop.height, coop.width));
    }
}

// ---------------------------------------------------------------------
// Scheduler determinism: the worker count is invisible
// ---------------------------------------------------------------------

#[test]
fn pod_trajectory_is_identical_across_worker_counts() {
    let cfg = pod_cfg(3, 3, 4, 4, 1, 1234);
    let reference = run_compact(&cfg, 6, MeshRuntime::Coop { workers: Some(1) });
    for workers in [Some(4), None] {
        let run = run_compact(&cfg, 6, MeshRuntime::Coop { workers });
        assert_eq!(
            reference.magnetization_sums, run.magnetization_sums,
            "trace depends on worker count {workers:?}"
        );
        assert_eq!(reference.final_plane, run.final_plane);
    }
}

// ---------------------------------------------------------------------
// Paper scale: 1024 logical cores on a small host
// ---------------------------------------------------------------------

#[test]
fn a_1024_core_pod_runs_and_is_topology_transparent() {
    // 32×32 = 1024 cores over a 128×128 global lattice; the same lattice
    // resharded as 16×64 must produce the bit-identical trajectory
    // (site-keyed randomness is a pure function of global coordinates).
    let cfg_32x32 = pod_cfg(32, 32, 4, 4, 1, 2025);
    let cfg_16x64 = pod_cfg(16, 64, 8, 2, 1, 2025);
    assert_eq!(cfg_32x32.torus.cores(), 1024);
    assert_eq!(cfg_16x64.torus.cores(), 1024);
    let a = run_compact(&cfg_32x32, 2, MeshRuntime::coop());
    let b = run_compact(&cfg_16x64, 2, MeshRuntime::coop());
    assert_eq!(a.magnetization_sums.len(), 2);
    assert_eq!(a.magnetization_sums, b.magnetization_sums, "sharding leaked into the physics");
    assert_eq!(a.final_plane, b.final_plane);
}

// ---------------------------------------------------------------------
// Reshape-on-resume across awkward tori, on the coop runtime
// ---------------------------------------------------------------------

#[test]
fn checkpoints_reshape_across_awkward_tori_under_coop() {
    // One 60×60 global lattice sharded three incompatible ways. Snapshot
    // at sweep 4 on 3×5, resume to sweep 8 on 5×3 and on 1×15: both must
    // land exactly where the uninterrupted 3×5 run lands.
    let coop_res = |checkpoint_every| ResilienceOpts {
        checkpoint_every,
        recv_timeout: Duration::from_secs(5),
        runtime: MeshRuntime::coop(),
        ..ResilienceOpts::default()
    };
    let cfg_3x5 = pod_cfg(3, 5, 20, 12, 2, 606);
    let unbroken = run_pod_resilient::<f32>(&cfg_3x5, 8, &coop_res(4), None).expect("unbroken");
    let half = run_pod_resilient::<f32>(&cfg_3x5, 4, &coop_res(2), None).expect("first half");
    assert_eq!((half.final_checkpoint.nx, half.final_checkpoint.ny), (3, 5));
    for (nx, ny, h, w) in [(5usize, 3usize, 12usize, 20usize), (1, 15, 60, 4)] {
        let cfg = pod_cfg(nx, ny, h, w, 2, 606);
        let rest =
            run_pod_resilient::<f32>(&cfg, 8, &coop_res(4), Some(half.final_checkpoint.clone()))
                .expect("resumed half");
        assert_eq!(
            rest.result.magnetization_sums, unbroken.result.magnetization_sums,
            "resume onto {nx}x{ny} diverged"
        );
        assert_eq!(rest.result.final_plane, unbroken.result.final_plane);
    }
}

// ---------------------------------------------------------------------
// Chaos: kill 1% of a 1024-core pod mid-run
// ---------------------------------------------------------------------

#[test]
fn mass_kill_drill_on_1024_cores_resumes_bit_exact() {
    if !serde_is_real() {
        return; // vault payloads need a real serializer
    }
    let tmp = Scratch::new("mass-kill");
    let cfg = pod_cfg(32, 32, 4, 4, 1, 31337);
    let sweeps = 4;
    // 8 collectives per sweep (4 shifts × 2 colors) on the compact engine.
    let span = 8 * sweeps as u64;
    // 2 mass-kill sessions, each taking ⌈1%·1024⌉ = 11 distinct cores.
    let plan = ChaosPlan::generate_mass_kill(11, 2, 1024, span, 0.01);
    let report = run_chaos_engine_rt::<f32, CompactIsing<f32>>(
        &cfg,
        sweeps,
        2,
        &plan,
        tmp.path(),
        3,
        MeshRuntime::coop(),
        IntegrityKnobs::default(),
    )
    .expect("chaos drill");
    assert!(report.bit_exact, "mass-kill drill diverged: {report:?}");
    assert_eq!(report.final_sweep, sweeps as u64);
    assert!(report.crashes >= 1, "the drill never actually crashed: {report:?}");
}
