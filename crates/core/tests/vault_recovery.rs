//! End-to-end durability drills for the checkpoint vault and the chaos
//! corruption injector, using opaque payloads so they run without any real
//! serializer. These are the integration-level counterparts of the unit
//! tests inside `vault.rs`: here the corruptions are applied through the
//! same [`tpu_ising_core::chaos`] machinery the chaos harness uses.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};

use tpu_ising_core::chaos::{apply_corruption, ChaosPlan, VaultCorruption};
use tpu_ising_core::vault::{encode_envelope, load_file, FileLoad, Vault, VaultError};

static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

/// A unique scratch directory per test, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!(
            "tpu-ising-vault-it-{}-{}-{tag}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn payload(sweep: u64) -> String {
    format!("{{\"sweep\":{sweep},\"spins\":\"deadbeef-{sweep}\"}}")
}

/// Fill a vault with `sweeps` generations of distinguishable payloads.
fn seeded_vault(dir: &Path, keep: usize, sweeps: &[u64]) -> Vault {
    let vault = Vault::new(dir, "drill", keep).unwrap();
    for &s in sweeps {
        vault.save("pod", s, &payload(s)).unwrap();
    }
    vault
}

#[test]
fn newest_generation_wins_when_everything_is_healthy() {
    let tmp = Scratch::new("healthy");
    let vault = seeded_vault(tmp.path(), 3, &[10, 20, 30]);
    let loaded = vault.load_latest("pod").unwrap();
    assert_eq!(loaded.sweep, 30);
    assert_eq!(loaded.payload, payload(30));
    assert!(loaded.quarantined.is_empty());
}

#[test]
fn every_chaos_corruption_kind_is_detected_and_quarantined() {
    for (tag, corruption) in [
        ("truncate", VaultCorruption::Truncate { permille: 500 }),
        ("bitflip-header", VaultCorruption::BitFlip { permille: 0, bit: 3 }),
        ("bitflip-payload", VaultCorruption::BitFlip { permille: 900, bit: 6 }),
        ("torn", VaultCorruption::TornHeader),
    ] {
        let tmp = Scratch::new(tag);
        let vault = seeded_vault(tmp.path(), 3, &[4, 8, 12]);
        let newest = vault.generations()[0].path.clone();
        apply_corruption(&newest, corruption).unwrap();

        let loaded = vault.load_latest("pod").unwrap();
        assert_eq!(loaded.sweep, 8, "{tag}: fallback should pick the next older generation");
        assert_eq!(loaded.payload, payload(8), "{tag}");
        assert_eq!(loaded.quarantined.len(), 1, "{tag}");
        assert!(!newest.exists(), "{tag}: corrupt generation should be renamed away");
        assert!(
            loaded.quarantined[0].extension().is_some_and(|e| e == "corrupt"),
            "{tag}: quarantine keeps the file under .corrupt"
        );
    }
}

#[test]
fn cascading_corruption_falls_back_generation_by_generation() {
    let tmp = Scratch::new("cascade");
    let vault = seeded_vault(tmp.path(), 4, &[1, 2, 3, 4]);
    for generation in vault.generations().iter().take(3) {
        apply_corruption(&generation.path, VaultCorruption::BitFlip { permille: 700, bit: 1 })
            .unwrap();
    }
    let loaded = vault.load_latest("pod").unwrap();
    assert_eq!(loaded.sweep, 1);
    assert_eq!(loaded.quarantined.len(), 3);
}

#[test]
fn all_generations_corrupt_reports_every_quarantined_file() {
    let tmp = Scratch::new("total-loss");
    let vault = seeded_vault(tmp.path(), 3, &[5, 6]);
    for generation in vault.generations() {
        apply_corruption(&generation.path, VaultCorruption::TornHeader).unwrap();
    }
    match vault.load_latest("pod") {
        Err(VaultError::NoValidGeneration { quarantined, scanned }) => {
            assert_eq!(scanned, 2);
            assert_eq!(quarantined.len(), 2);
        }
        other => panic!("expected NoValidGeneration, got {other:?}"),
    }
}

#[test]
fn keep_n_pruning_bounds_the_generation_count() {
    let tmp = Scratch::new("prune");
    let vault = seeded_vault(tmp.path(), 2, &[1, 2, 3, 4, 5]);
    let gens = vault.generations();
    assert_eq!(gens.iter().map(|g| g.sweep).collect::<Vec<_>>(), vec![5, 4]);
    // Pruned generations are really gone from disk, not just unlisted.
    let files = std::fs::read_dir(tmp.path()).unwrap().count();
    assert_eq!(files, 2);
}

#[test]
fn truncation_at_every_byte_offset_is_detected_by_the_generation_scan() {
    let tmp = Scratch::new("truncate-sweep");
    let reference = seeded_vault(tmp.path(), 1, &[42]);
    let full = std::fs::read(&reference.generations()[0].path).unwrap();
    for cut in 0..full.len() {
        let sub = Scratch::new(&format!("truncate-{cut}"));
        let vault = Vault::new(sub.path(), "drill", 1).unwrap();
        std::fs::write(vault.generation_path(42), &full[..cut]).unwrap();
        match vault.load_latest("pod") {
            Err(VaultError::NoValidGeneration { quarantined, .. }) => {
                assert_eq!(quarantined.len(), 1, "cut at {cut}");
            }
            other => panic!("truncation to {cut}/{} bytes not detected: {other:?}", full.len()),
        }
    }
}

#[test]
fn resume_files_truncated_mid_envelope_are_rejected_by_load_file() {
    // `load_file` (the `--resume <path>` entry point) keeps a legacy
    // passthrough for pre-vault raw JSON, so only cuts that still look
    // like an envelope can be *verified*; the property that matters is
    // that no truncation ever yields a successfully verified envelope.
    let tmp = Scratch::new("resume-truncate");
    let vault = seeded_vault(tmp.path(), 1, &[42]);
    let full = std::fs::read(&vault.generations()[0].path).unwrap();
    let target = tmp.path().join("cut.json");
    for cut in 0..full.len() {
        std::fs::write(&target, &full[..cut]).unwrap();
        match load_file(&target, "pod") {
            Ok(FileLoad::Envelope(..)) => {
                panic!("truncation to {cut}/{} bytes verified as intact", full.len())
            }
            // Short cuts lose the magic tag and fall through as legacy
            // payloads for the JSON parser to reject; longer cuts fail
            // the envelope checks outright.
            Ok(FileLoad::Legacy(payload)) => assert_ne!(payload.as_bytes(), &full[..]),
            Err(VaultError::Corrupt { .. }) => {}
            other => panic!("unexpected result at cut {cut}: {other:?}"),
        }
    }
}

#[test]
fn wrong_kind_is_rejected_so_algorithms_cannot_cross_resume() {
    let tmp = Scratch::new("kind");
    let vault = seeded_vault(tmp.path(), 2, &[9]);
    // A multispin resume must not silently accept a scalar pod snapshot;
    // the mismatched generation is treated exactly like a corrupt one
    // (quarantined), so the failure names the offending file.
    match vault.load_latest("multispin-pod") {
        Err(VaultError::NoValidGeneration { quarantined, scanned }) => {
            assert_eq!(scanned, 1);
            assert_eq!(quarantined.len(), 1);
            assert!(quarantined[0].ends_with(".corrupt"));
        }
        other => panic!("expected kind mismatch to fail the scan, got {other:?}"),
    }
}

#[test]
fn legacy_raw_json_files_still_load() {
    let tmp = Scratch::new("legacy");
    let path = tmp.path().join("old-style.json");
    std::fs::write(&path, "{\"sweep_index\":3}").unwrap();
    match load_file(&path, "pod") {
        Ok(FileLoad::Legacy(payload)) => assert_eq!(payload, "{\"sweep_index\":3}"),
        other => panic!("expected legacy passthrough, got {other:?}"),
    }
}

#[test]
fn enveloped_user_files_roundtrip_through_load_file() {
    let tmp = Scratch::new("envelope");
    let path = tmp.path().join("pod.ckpt.json");
    std::fs::write(&path, encode_envelope("pod", 17, &payload(17))).unwrap();
    match load_file(&path, "pod") {
        Ok(FileLoad::Envelope(meta, body)) => {
            assert_eq!(meta.sweep, 17);
            assert_eq!(body, payload(17));
        }
        other => panic!("expected a verified envelope, got {other:?}"),
    }
}

#[test]
fn chaos_plans_are_deterministic_and_respect_bounds() {
    let a = ChaosPlan::generate(99, 5, 4, 64);
    let b = ChaosPlan::generate(99, 5, 4, 64);
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
    assert_eq!(a.sessions.len(), 5);
    for s in &a.sessions {
        for &(core, at) in &s.kills {
            assert!(core < 4);
            assert!(at < 64);
        }
        if let Some((from, to, at)) = s.drop {
            assert!(from < 4 && to < 4 && from != to && at < 64);
        }
        if let Some((core, at, micros)) = s.delay {
            assert!(core < 4 && at < 64 && micros < 150_000);
        }
    }
    let c = ChaosPlan::generate(100, 5, 4, 64);
    assert_ne!(format!("{a:?}"), format!("{c:?}"), "different seeds, different schedules");
}
