//! `tpu-ising` — command-line front end for the workspace.
//!
//! ```text
//! tpu-ising simulate --size 64 --t-over-tc 0.95 --algo compact --dtype bf16
//! tpu-ising scan     --sizes 16,32 --from 0.92 --to 1.08 --points 9
//! tpu-ising pod      --torus 2x2 --per-core 64x64 --sweeps 50
//! tpu-ising model    --cores 512 --per-core 896x448 --variant compact
//! tpu-ising hlo      --grid 2x2 --tile 8 --color black
//! ```

mod args;
mod commands;

use args::Args;

/// Count heap traffic so `--metrics` can report `alloc_bytes_per_sweep`
/// (the band backend's zero-allocation steady state is measured, not
/// assumed).
#[global_allocator]
static ALLOC: tpu_ising_obs::alloc::CountingAllocator = tpu_ising_obs::alloc::CountingAllocator;

fn usage() -> &'static str {
    "tpu-ising — checkerboard Ising Monte Carlo with the TPU mapping (SC'19 reproduction)

USAGE:
  tpu-ising <COMMAND> [OPTIONS]

COMMANDS:
  simulate   run one chain and print observables
             --size N (64)  --t-over-tc X (0.95) | --temp T
             --algo compact|naive|conv|gpu|wolff|multispin (compact)
                                multispin = packed engine, 64 replicas/word,
                                per-replica ⟨|m|⟩ ± stderr + pooled Binder
             --dtype f32|bf16 (f32)  --burn N (500)  --sweeps N (2000)
             --backend dense|band (band)   neighbor-sum kernels: dense
                                reference matmuls or the fused band path
                                (bit-identical, ~zero-alloc steady state)
             --seed S (42)  --cold  --json  --metrics  --progress
  scan       Binder-cumulant temperature scan + Tc estimate
             --sizes A,B,.. (16,32)  --from X (0.92)  --to X (1.08)
             --points N (9)  --burn N (400)  --sweeps N (1600)  --json
             --backend dense|band (band)  --progress
  pod        distributed SPMD run on a modeled TensorCore mesh
             --torus AxB (2x2)  --per-core HxW (64x64)  --t-over-tc X (0.95)
             --mesh-runtime threads|coop|auto (auto)
                                threads = one OS thread per core; coop =
                                work-stealing cooperative scheduler (runs
                                1024+ logical cores on a laptop, virtual-
                                time timeouts); auto picks coop only when
                                the pod exceeds the host's parallelism
             --workers N        coop worker threads (implies coop;
                                default min(cores, host parallelism))
             --sweeps N (50)  --seed S (7)  --site-keyed  --metrics
             --backend dense|band (band)
             --algo compact|naive|conv|multispin (compact)
                                any mesh-capable engine; multispin = 64
                                replicas per word, packed u64 halo exchange
                                (32× fewer halo bytes), always site-keyed
             --dtype f32|bf16 (f32)   scalar engines only
             --checkpoint-every N (final only; must be >= 1 if given)
             --checkpoint-out FILE   also keeps a durable vault of CRC-
                                checked generations next to FILE
             --keep-generations N (3)  vault generations retained
             --resume FILE      corrupt files are quarantined and the
                                newest valid vault generation is used
             --max-restarts N (3)  --recv-timeout-ms MS (30000)
             --collective-retries N (2)  --retry-backoff-ms MS (50)
                                transient collective timeouts are retried
                                in place before a pod restart
             --kill-core N --kill-at K (inject a fault for testing)
             --scrub-every N    arm the integrity scrubber: rolling CRC-32
                                lattice digests every N sweeps plus halo
                                wire checksums; silent corruption becomes
                                a typed error and a tiered recovery
             --watchdog-timeout-ms MS   arm the liveness watchdog: a wedged
                                core becomes a typed stall (virtual time
                                under the coop runtime)
             --degraded-min-cores N   when the restart budget exhausts,
                                continue on the largest survivor torus
                                with at least N cores (site-keyed only)
             --trace-out PATH   write a Chrome trace (one track per core,
                                open in chrome://tracing or Perfetto) and
                                print measured vs modeled breakdowns
             --telemetry-dir DIR   flight recorder + telemetry sink: typed
                                per-core events, postmortem bundles on
                                faults, metrics.jsonl + metrics.prom
             --flush-every MS (1000)  telemetry flush interval
  chaos      seeded chaos drill: crash/corrupt/resume loop, verifies the
             surviving run is bit-exact with an uninterrupted reference
             --algo compact|naive|conv|multispin (compact)  --torus AxB (2x2)
             --per-core HxW (16x16)  --sweeps N (8)  --seed S (7)
             --dtype f32|bf16 (f32)   scalar engines only
             --chaos-seed S (1)  --sessions N (3)  --checkpoint-every N (2)
             --vault-dir DIR (chaos-vault)  --keep-generations N (3)
             --kill-fraction F  mass-preemption drill: every session kills
                                ceil(F * cores) distinct cores at once
             --integrity        silent-corruption drill instead: rotating
                                lattice bit flips, corrupted halos and
                                wedged cores; arms the scrubber + watchdog
                                unless --disarmed or explicit knobs given
             --disarmed         run the drill with integrity checks off
                                (demonstrates silent divergence; exit 1)
             --scrub-every N --watchdog-timeout-ms MS   as in pod
                                exit codes: 0 detected + recovered bit-
                                exact, 1 diverged disarmed, 2 diverged
                                with the scrubber armed (undetected SDC)
             --mesh-runtime threads|coop|auto (auto)  --workers N  as in pod
             --telemetry-dir DIR  --flush-every MS (1000)   as in pod
  postmortem merge flight-recorder bundles into one ordered timeline
             --dir DIR (telemetry)  directory holding postmortem-*.jsonl
             --trace-out PATH   Chrome-trace export, one track per core
                                per restart generation
  model      modeled TPU v3 step time / throughput / roofline for a config
             --cores N (2)  --per-core HxW, in 128-spin units (896x448)
             --variant compact|naive|conv (compact)  --dtype f32|bf16 (bf16)
  anneal     simulated annealing on a random ±J spin-glass instance
             --size N (24)  --budget N (960 sweeps)  --seed S (1)
  temper     parallel tempering ladder demo
             --size N (24)  --replicas N (6)  --rounds N (200)
  hlo        dump the compact update step as HLO-lite text
             --grid MxN (2x2)  --tile T (8)  --color black|white (black)
             --beta X (0.4407)  --optimize
  help       print this text
"
}

fn main() {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            std::process::exit(2);
        }
    };
    let result = match args.command.as_deref() {
        Some("simulate") => commands::simulate(&args),
        Some("scan") => commands::scan(&args),
        Some("pod") => commands::pod(&args),
        Some("chaos") => commands::chaos(&args),
        Some("model") => commands::model(&args),
        Some("anneal") => commands::anneal(&args),
        Some("temper") => commands::temper(&args),
        Some("hlo") => commands::hlo(&args),
        Some("postmortem") => commands::postmortem(&args),
        Some("help") | None => {
            println!("{}", usage());
            Ok(())
        }
        Some(other) => Err(args::ArgError(format!("unknown command '{other}'"))),
    };
    if let Err(e) = result {
        eprintln!("error: {e}\n\nrun `tpu-ising help` for usage");
        std::process::exit(2);
    }
}
