//! A small `--key value` argument parser (no external dependencies).

use std::collections::HashMap;

/// Parsed arguments: positional subcommand plus `--key value` pairs and
/// bare `--flag`s.
#[derive(Debug, Default)]
pub struct Args {
    /// First positional token (the subcommand).
    pub command: Option<String>,
    kv: HashMap<String, String>,
    flags: Vec<String>,
}

/// Argument parsing / validation error, printed with usage.
#[derive(Debug, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Args {
    /// Parse a token stream (excluding `argv[0]`). Never panics on any
    /// input: malformed command lines come back as [`ArgError`] naming
    /// the offending token, which `main` prints with usage (exit 2).
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Result<Args, ArgError> {
        let mut out = Args::default();
        let mut it = tokens.into_iter().peekable();
        while let Some(tok) = it.next() {
            if let Some(key) = tok.strip_prefix("--") {
                if key.is_empty() {
                    return Err(ArgError("stray '--' with no option name".to_string()));
                }
                // A following token that is not itself an option is this
                // option's value; otherwise the option is a bare flag.
                match it.next_if(|v| !v.starts_with("--")) {
                    Some(v) => {
                        if out.kv.insert(key.to_string(), v).is_some() {
                            return Err(ArgError(format!("duplicate option --{key}")));
                        }
                    }
                    None => out.flags.push(key.to_string()),
                }
            } else if out.command.is_none() {
                out.command = Some(tok);
            } else {
                return Err(ArgError(format!("unexpected positional argument '{tok}'")));
            }
        }
        Ok(out)
    }

    /// String option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.kv.get(key).map(String::as_str)
    }

    /// String option with default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// Bare flag presence.
    pub fn has_flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// Typed option with default.
    pub fn get_parse<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError(format!("invalid value '{v}' for --{key}"))),
        }
    }

    /// Typed option with default, rejecting values below `min` with a
    /// message that names the option and the floor. Used for knobs where a
    /// too-small value silently disables a safety net (`--keep-generations
    /// 0` would discard every checkpoint; `--checkpoint-every 0` would
    /// snapshot nothing).
    pub fn get_parse_min<T>(&self, key: &str, default: T, min: T) -> Result<T, ArgError>
    where
        T: std::str::FromStr + PartialOrd + std::fmt::Display,
    {
        let v = self.get_parse(key, default)?;
        if v < min {
            return Err(ArgError(format!("--{key} must be at least {min}, got {v}")));
        }
        Ok(v)
    }

    /// Typed option, `None` when absent.
    pub fn get_opt_parse<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, ArgError> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| ArgError(format!("invalid value '{v}' for --{key}"))),
        }
    }

    /// Parse `AxB` pairs like `--torus 2x2` or `--per-core 128x64`.
    pub fn get_pair(&self, key: &str, default: (usize, usize)) -> Result<(usize, usize), ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => {
                let parts: Vec<&str> = v.split(['x', 'X', ',']).collect();
                if parts.len() != 2 {
                    return Err(ArgError(format!("expected AxB for --{key}, got '{v}'")));
                }
                let a = parts[0]
                    .trim()
                    .parse()
                    .map_err(|_| ArgError(format!("invalid --{key} '{v}'")))?;
                let b = parts[1]
                    .trim()
                    .parse()
                    .map_err(|_| ArgError(format!("invalid --{key} '{v}'")))?;
                Ok((a, b))
            }
        }
    }

    /// Comma-separated list of a parseable type.
    pub fn get_list<T: std::str::FromStr>(
        &self,
        key: &str,
        default: Vec<T>,
    ) -> Result<Vec<T>, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .split(',')
                .map(|s| {
                    s.trim()
                        .parse()
                        .map_err(|_| ArgError(format!("invalid element '{s}' in --{key}")))
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn subcommand_and_options() {
        let a = parse("simulate --size 64 --temp 2.1 --quiet");
        assert_eq!(a.command.as_deref(), Some("simulate"));
        assert_eq!(a.get("size"), Some("64"));
        assert_eq!(a.get_parse("size", 0usize).unwrap(), 64);
        assert_eq!(a.get_parse("temp", 0.0f64).unwrap(), 2.1);
        assert!(a.has_flag("quiet"));
        assert!(!a.has_flag("loud"));
    }

    #[test]
    fn defaults_apply() {
        let a = parse("scan");
        assert_eq!(a.get_or("algo", "compact"), "compact");
        assert_eq!(a.get_parse("sweeps", 100usize).unwrap(), 100);
    }

    #[test]
    fn optional_typed_options() {
        let a = parse("pod --kill-core 3");
        assert_eq!(a.get_opt_parse::<usize>("kill-core").unwrap(), Some(3));
        assert_eq!(a.get_opt_parse::<usize>("kill-at").unwrap(), None);
        assert!(parse("pod --kill-core x").get_opt_parse::<usize>("kill-core").is_err());
    }

    #[test]
    fn pairs_and_lists() {
        let a = parse("pod --torus 2x4 --sizes 16,32,64");
        assert_eq!(a.get_pair("torus", (1, 1)).unwrap(), (2, 4));
        assert_eq!(a.get_list("sizes", vec![0usize]).unwrap(), vec![16, 32, 64]);
        assert_eq!(a.get_pair("per-core", (8, 8)).unwrap(), (8, 8));
    }

    #[test]
    fn minimum_bounds_are_enforced() {
        let a = parse("pod --checkpoint-every 0 --keep-generations 0");
        let err = a.get_parse_min("checkpoint-every", 1usize, 1).unwrap_err();
        assert!(err.0.contains("checkpoint-every") && err.0.contains("at least 1"));
        assert!(a.get_parse_min("keep-generations", 3usize, 1).is_err());
        let ok = parse("pod --checkpoint-every 4");
        assert_eq!(ok.get_parse_min("checkpoint-every", 1usize, 1).unwrap(), 4);
        // defaults are not validated away
        assert_eq!(ok.get_parse_min("keep-generations", 3usize, 1).unwrap(), 3);
    }

    #[test]
    fn errors_are_reported() {
        assert!(Args::parse(["x".into(), "y".into()]).is_err());
        let a = parse("simulate --size abc");
        assert!(a.get_parse("size", 0usize).is_err());
        let a = parse("pod --torus 2x2x2");
        assert!(a.get_pair("torus", (1, 1)).is_err());
        assert!(Args::parse("s --k 1 --k 2".split_whitespace().map(String::from)).is_err());
    }

    #[test]
    fn errors_name_the_offending_flag() {
        let a = parse("simulate --size abc --torus 9 --sizes 1,x,3");
        let e = a.get_parse("size", 0usize).unwrap_err();
        assert!(e.0.contains("--size") && e.0.contains("abc"), "{e}");
        let e = a.get_pair("torus", (1, 1)).unwrap_err();
        assert!(e.0.contains("--torus"), "{e}");
        let e = a.get_list("sizes", vec![0usize]).unwrap_err();
        assert!(e.0.contains("--sizes") && e.0.contains('x'), "{e}");
    }

    #[test]
    fn hostile_token_streams_never_panic() {
        // trailing option with no value → bare flag
        let a = parse("pod --resume");
        assert!(a.has_flag("resume"));
        // an option followed by another option is a flag, not a value
        let a = parse("pod --metrics --torus 2x2");
        assert!(a.has_flag("metrics"));
        assert_eq!(a.get("torus"), Some("2x2"));
        // a stray `--` is a parse error, not a panic
        assert!(Args::parse(["pod".into(), "--".into()]).is_err());
        // negative numbers still parse as values
        let a = parse("anneal --temp -1.5");
        assert_eq!(a.get_parse("temp", 0.0f64).unwrap(), -1.5);
    }
}
