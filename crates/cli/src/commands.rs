//! Subcommand implementations.

use crate::args::{ArgError, Args};
use tpu_ising_baseline::GpuStyleIsing;
use tpu_ising_core::chaos::{
    run_chaos_engine_rt, run_chaos_multispin_rt, ChaosPlan, ChaosReport, IntegrityKnobs,
};
use tpu_ising_core::distributed::{
    run_pod_engine_resilient, run_pod_engine_vaulted, PodCheckpoint, PodConfig, PodError, PodRng,
    ResilienceOpts, POD_VAULT_KIND,
};
use tpu_ising_core::engine::{
    build_engine, with_scalar_engine, Algo, Dtype, EngineSpec, ScalarEngineVisitor,
    ScalarMeshEngine,
};
use tpu_ising_core::fss::{binder_tc_estimate, SizeCurve};
use tpu_ising_core::multispin::{
    run_multispin_pod_resilient, run_multispin_pod_vaulted, MultiSpinPodCheckpoint,
    MultiSpinPodConfig, MULTISPIN_VAULT_KIND, REPLICAS,
};
use tpu_ising_core::vault::{encode_envelope, load_file, FileLoad, Vault, VaultError};
use tpu_ising_core::{
    cold_plane, onsager, random_plane, run_chain_labeled, ChainStats, Color, CompactIsing,
    KernelBackend, Randomness, Scalar, T_CRITICAL,
};
use tpu_ising_device::cost::{
    step_time, throughput_flips_per_ns, ExecutionMode, StepConfig, Variant,
};
use tpu_ising_device::energy::energy_nj_per_flip;
use tpu_ising_device::mesh::{FaultPlan, MeshRuntime, RetryPolicy, Torus};
use tpu_ising_device::params::TpuV3Params;
use tpu_ising_device::roofline::roofline;
use tpu_ising_obs as obs;
use tpu_ising_rng::RandomUniform;

/// Wire the shared observability flags: `--progress` (heartbeats on
/// stderr), `--metrics` (counter/gauge summary after the run) and, where a
/// command supports it, `--trace-out <path>` implies metrics too.
fn init_observability(args: &Args, trace_implies_metrics: bool) -> bool {
    if args.has_flag("progress") {
        obs::enable_progress(std::time::Duration::from_secs(2));
    }
    let want_metrics =
        args.has_flag("metrics") || (trace_implies_metrics && args.get("trace-out").is_some());
    if want_metrics {
        obs::metrics().reset();
        obs::enable_metrics();
    }
    want_metrics
}

/// Wire the flight-recorder/telemetry flags shared by `pod` and `chaos`:
/// `--telemetry-dir DIR` turns the per-core event recorder on, points
/// postmortem bundles at DIR, and starts a background sink that flushes
/// metrics snapshots (JSONL + Prometheus text) into DIR every
/// `--flush-every MS` (default 1000).
fn init_telemetry(args: &Args) -> Result<Option<obs::TelemetryHandle>, ArgError> {
    let Some(dir) = args.get("telemetry-dir") else { return Ok(None) };
    let every_ms: u64 = args.get_parse_min("flush-every", 1000u64, 1)?;
    // Telemetry without metrics would flush empty snapshots.
    obs::enable_metrics();
    obs::recorder::reset();
    obs::recorder::enable_recording();
    if let Ok(Some(seed)) = args.get_opt_parse::<u64>("seed") {
        obs::recorder::set_run_id(seed);
    }
    obs::recorder::set_postmortem_dir(Some(std::path::PathBuf::from(dir)));
    let sink = obs::TelemetrySink::new(dir, std::time::Duration::from_millis(every_ms))
        .map_err(|e| ArgError(format!("cannot create telemetry dir '{dir}': {e}")))?;
    Ok(Some(sink.start()))
}

/// Stop the telemetry sink (final metrics flush) and land a final
/// postmortem bundle so the timeline also covers the surviving
/// generation.
fn finish_telemetry(handle: Option<obs::TelemetryHandle>) {
    if let Some(h) = handle {
        if let Some(path) = obs::recorder::dump_postmortem("run-complete") {
            println!("[postmortem bundle written to {}]", path.display());
        }
        if let Some(sink) = h.stop() {
            println!("[telemetry: {} flush(es) in {}]", sink.flushes(), sink.dir().display());
        }
    }
}

/// Print the flat metrics summary to stdout.
fn print_metrics() {
    print!("\nmetrics:\n{}", obs::metrics().snapshot().render());
}

/// Derive the acceptance-ratio gauge from the flip counters, if present.
fn finalize_rate_gauges() {
    let m = obs::metrics();
    let snap = m.snapshot();
    let proposals = snap.counter("flip_proposals_total");
    if proposals > 0 {
        m.gauge("acceptance_ratio")
            .set(snap.counter("flips_accepted_total") as f64 / proposals as f64);
    }
}

/// The durable vault colocated with a checkpoint file: generations live in
/// the file's directory under a stem derived from its name
/// (`out/pod.ckpt.json` → `out/pod-ckpt-<sweep>.json`, keep-N pruned).
fn vault_at(path: &str, keep: usize) -> Result<Vault, ArgError> {
    let p = std::path::Path::new(path);
    let dir = match p.parent() {
        Some(d) if !d.as_os_str().is_empty() => d,
        _ => std::path::Path::new("."),
    };
    let name = p
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| ArgError(format!("checkpoint path '{path}' has no file name")))?;
    let mut stem = name;
    for suffix in [".json", ".ckpt"] {
        if let Some(s) = stem.strip_suffix(suffix) {
            stem = s;
        }
    }
    if stem.is_empty() {
        stem = "pod";
    }
    Vault::new(dir, stem, keep).map_err(|e| ArgError(e.to_string()))
}

/// Load a `--resume` file with the full durability ladder: a verified
/// vault envelope or a pre-vault raw JSON snapshot parses directly; a
/// corrupt file is quarantined as `<file>.corrupt` and the newest valid
/// sibling vault generation is used instead, with a message naming both.
fn load_resume_with<T>(
    path: &str,
    kind: &str,
    keep: usize,
    parse: impl Fn(&str) -> Result<T, String>,
) -> Result<T, ArgError> {
    let direct: Result<T, String> = match load_file(std::path::Path::new(path), kind) {
        Ok(FileLoad::Envelope(_, payload)) => parse(&payload),
        Ok(FileLoad::Legacy(payload)) => parse(&payload),
        Err(VaultError::Corrupt { msg, .. }) => Err(msg),
        Err(e) => return Err(ArgError(format!("cannot read --resume {path}: {e}"))),
    };
    let why = match direct {
        Ok(t) => return Ok(t),
        Err(why) => why,
    };
    let vault = vault_at(path, keep)?;
    let quarantined = vault.quarantine(std::path::Path::new(path));
    match vault.load_latest(kind) {
        Ok(loaded) => match parse(&loaded.payload) {
            Ok(t) => {
                println!(
                    "warning: --resume {path} failed verification ({why}); quarantined as {} \
                     and resuming from generation {} (sweep {})",
                    quarantined.display(),
                    loaded.path.display(),
                    loaded.sweep
                );
                Ok(t)
            }
            Err(e) => Err(ArgError(format!(
                "--resume {path} is corrupt ({why}); quarantined as {}; the newest valid \
                 generation {} then failed to parse: {e}",
                quarantined.display(),
                loaded.path.display()
            ))),
        },
        Err(e) => Err(ArgError(format!(
            "--resume {path} is corrupt ({why}); quarantined as {}; no valid older \
             generation found: {e}",
            quarantined.display()
        ))),
    }
}

/// Write the user-named checkpoint file as a verified vault envelope, so a
/// later `--resume` of the exact path gets CRC protection too.
fn write_enveloped(path: &str, kind: &str, sweep: u64, json: &str) -> Result<(), ArgError> {
    std::fs::write(path, encode_envelope(kind, sweep, json))
        .map_err(|e| ArgError(format!("cannot write --checkpoint-out {path}: {e}")))
}

/// Parse `--mesh-runtime threads|coop|auto` (default auto: one thread per
/// core while the pod fits the host, the work-stealing cooperative
/// scheduler beyond that) plus `--workers N` (coop worker-thread count;
/// implies the coop runtime).
fn mesh_runtime_from_args(args: &Args) -> Result<MeshRuntime, ArgError> {
    let s = args.get_or("mesh-runtime", "auto");
    let runtime: MeshRuntime = s.parse().map_err(|_| {
        ArgError(format!("unknown --mesh-runtime '{s}' (expected threads|coop|auto)"))
    })?;
    let workers: Option<usize> = args.get_opt_parse("workers")?;
    match (runtime, workers) {
        (rt, None) => Ok(rt),
        (MeshRuntime::Threads, Some(_)) => {
            Err(ArgError("--workers needs --mesh-runtime coop or auto".into()))
        }
        (_, Some(0)) => Err(ArgError("--workers must be at least 1".into())),
        (_, Some(n)) => Ok(MeshRuntime::Coop { workers: Some(n) }),
    }
}

/// The shared fault-tolerance knobs of `pod` (both algos): snapshot
/// cadence, restart budget, recv timeout, tier-1 retry policy, and the
/// deterministic kill switch used by CI drills.
fn resilience_from_args(args: &Args, sweeps: usize) -> Result<ResilienceOpts, ArgError> {
    let kill_core: Option<usize> = args.get_opt_parse("kill-core")?;
    let kill_at: Option<u64> = args.get_opt_parse("kill-at")?;
    let mut faults = FaultPlan::new();
    match (kill_core, kill_at) {
        (Some(core), Some(at)) => faults = faults.kill(core, at),
        (None, None) => {}
        _ => {
            return Err(ArgError("--kill-core and --kill-at must be given together".into()));
        }
    }
    Ok(ResilienceOpts {
        // Omitting --checkpoint-every means "final snapshot only"; an
        // explicit 0 is rejected (it would snapshot nothing at all).
        checkpoint_every: args.get_parse_min("checkpoint-every", sweeps.max(1), 1)?,
        max_restarts: args.get_parse("max-restarts", 3usize)?,
        recv_timeout: std::time::Duration::from_millis(
            args.get_parse("recv-timeout-ms", 30_000u64)?,
        ),
        faults,
        retry: RetryPolicy {
            max_retries: args.get_parse("collective-retries", 2u32)?,
            backoff: std::time::Duration::from_millis(args.get_parse("retry-backoff-ms", 50u64)?),
        },
        runtime: mesh_runtime_from_args(args)?,
        scrub_every: args.get_opt_parse("scrub-every")?.map(|n: u64| n.max(1)),
        watchdog_timeout: args
            .get_opt_parse("watchdog-timeout-ms")?
            .map(std::time::Duration::from_millis),
        degraded_min_cores: args.get_opt_parse("degraded-min-cores")?,
    })
}

/// Parse `--backend dense|band` (default: band, the fast fused path).
fn backend(args: &Args) -> Result<KernelBackend, ArgError> {
    let s = args.get_or("backend", "band");
    s.parse().map_err(|_| ArgError(format!("unknown --backend '{s}' (expected dense|band)")))
}

fn temperature(args: &Args) -> Result<f64, ArgError> {
    if let Some(t) = args.get("temp") {
        t.parse::<f64>().map_err(|_| ArgError(format!("invalid --temp '{t}'")))
    } else {
        Ok(args.get_parse("t-over-tc", 0.95f64)? * T_CRITICAL)
    }
}

fn print_stats(t: f64, l: usize, stats: &ChainStats, json: bool) {
    let beta = 1.0 / t;
    if json {
        println!(
            "{}",
            serde_json::json!({
                "lattice": l,
                "temperature": t,
                "t_over_tc": t / T_CRITICAL,
                "mean_abs_m": stats.mean_abs_m,
                "err_abs_m": stats.err_abs_m,
                "binder": stats.binder,
                "mean_energy": stats.mean_energy,
                "err_energy": stats.err_energy,
                "susceptibility": stats.susceptibility(beta, l * l),
                "specific_heat": stats.specific_heat(beta, l * l),
                "onsager_m": onsager::magnetization(t),
                "onsager_e": onsager::energy_per_site(t),
            })
        );
    } else {
        println!("L = {l}, T = {t:.4} (T/Tc = {:.4}), {} samples", t / T_CRITICAL, stats.samples);
        println!(
            "  ⟨|m|⟩ = {:.4} ± {:.4}   (Onsager: {:.4})",
            stats.mean_abs_m,
            stats.err_abs_m,
            onsager::magnetization(t)
        );
        println!("  U4    = {:.4}", stats.binder);
        println!(
            "  ⟨E⟩/N = {:.4} ± {:.4}   (Onsager: {:.4})",
            stats.mean_energy,
            stats.err_energy,
            onsager::energy_per_site(t)
        );
        println!("  χ     = {:.4}", stats.susceptibility(beta, l * l));
        println!("  c     = {:.4}", stats.specific_heat(beta, l * l));
    }
}

/// `simulate` — one chain, one algorithm, one precision. Every registered
/// algorithm dispatches through [`build_engine`]; the replica-parallel
/// path below is driven purely by the engine's capabilities, not its name.
pub fn simulate(args: &Args) -> Result<(), ArgError> {
    let l: usize = args.get_parse("size", 64usize)?;
    let t = temperature(args)?;
    let beta = 1.0 / t;
    let burn: usize = args.get_parse("burn", 500usize)?;
    let sweeps: usize = args.get_parse("sweeps", 2000usize)?;
    let seed: u64 = args.get_parse("seed", 42u64)?;
    let algo = args.get_or("algo", "compact");
    let json = args.has_flag("json");
    let cold = args.has_flag("cold") || t < T_CRITICAL;
    let tile = (l / 4).clamp(2, 16);
    let be = backend(args)?;
    let want_metrics = init_observability(args, false);
    let label = format!("simulate {algo} L={l}");

    // The GPU-style baseline exists to be compared against, not deployed,
    // so it stays outside the Engine registry as an f32-only special case.
    if algo == "gpu" {
        if args.get_or("dtype", "f32") != "f32" {
            return Err(ArgError("the gpu baseline is f32-only".into()));
        }
        let init = if cold { cold_plane(l, l) } else { random_plane(seed, l, l) };
        let mut s = GpuStyleIsing::new(init, beta, Randomness::bulk(seed));
        let stats = run_chain_labeled(&mut s, burn, sweeps, &label);
        print_stats(t, l, &stats, json);
        if want_metrics {
            finalize_rate_gauges();
            print_metrics();
        }
        return Ok(());
    }

    let algo: Algo = algo.parse().map_err(ArgError)?;
    let dtype: Dtype = args.get_or("dtype", "f32").parse().map_err(ArgError)?;
    let mut engine = build_engine(&EngineSpec {
        algo,
        dtype,
        height: l,
        width: l,
        tile,
        beta,
        seed,
        cold,
        backend: be,
    })
    .map_err(ArgError)?;
    engine.set_tile_rows(args.get_opt_parse::<usize>("tile-rows")?);
    let replicas = engine.caps().replicas;

    if replicas > 1 {
        // Replica-parallel engines advance many independent chains per
        // sweep, so ⟨|m|⟩ gets a cross-replica standard error and the
        // Binder cumulant pools every chain's moments.
        {
            let isa = tpu_ising_rng::simd::isa();
            println!(
                "multispin dispatch: {} ({} planes/feed), {}-row tiles",
                isa.name(),
                isa.lanes(),
                engine.tile_rows().unwrap_or(1)
            );
        }
        for _ in 0..burn {
            engine.sweep();
        }
        let n = (l * l) as f64;
        let mut abs_m = vec![0.0f64; replicas];
        let mut m2 = vec![0.0f64; replicas];
        let mut m4 = vec![0.0f64; replicas];
        let t0 = std::time::Instant::now();
        for _ in 0..sweeps {
            engine.sweep();
            for (k, &mag) in engine.replica_magnetization_sums().iter().enumerate() {
                let m = mag / n;
                abs_m[k] += m.abs();
                m2[k] += m * m;
                m4[k] += m * m * m * m;
            }
        }
        let dt = t0.elapsed().as_secs_f64();
        let per_replica: Vec<f64> = abs_m.iter().map(|a| a / sweeps as f64).collect();
        let mean = per_replica.iter().sum::<f64>() / replicas as f64;
        let var = per_replica.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
            / (replicas - 1) as f64;
        let stderr = (var / replicas as f64).sqrt();
        let (p2, p4) = (
            m2.iter().sum::<f64>() / (replicas * sweeps) as f64,
            m4.iter().sum::<f64>() / (replicas * sweeps) as f64,
        );
        let binder = 1.0 - p4 / (3.0 * p2 * p2);
        let flips = engine.flips_per_sweep() as f64 * sweeps as f64;
        println!(
            "L = {l}, T = {t:.4} (T/Tc = {:.4}), {replicas} replicas × {sweeps} sweeps",
            t / T_CRITICAL
        );
        println!(
            "  ⟨|m|⟩ = {:.4} ± {:.4} across replicas   (replica 0: {:.4}, Onsager: {:.4})",
            mean,
            stderr,
            per_replica[0],
            onsager::magnetization(t)
        );
        println!("  U4    = {binder:.4} (pooled over {replicas} chains)");
        println!(
            "  throughput: {:.3} flips/ns aggregate ({:.1} Msweeps-sites/s)",
            flips / dt / 1e9,
            n * sweeps as f64 / dt / 1e6
        );
    } else {
        let stats = run_chain_labeled(&mut engine, burn, sweeps, &label);
        print_stats(t, l, &stats, json);
    }
    if want_metrics {
        finalize_rate_gauges();
        print_metrics();
    }
    Ok(())
}

/// `scan` — Binder scan over sizes and temperatures, Tc estimate.
pub fn scan(args: &Args) -> Result<(), ArgError> {
    let sizes: Vec<usize> = args.get_list("sizes", vec![16, 32])?;
    let from: f64 = args.get_parse("from", 0.92f64)?;
    let to: f64 = args.get_parse("to", 1.08f64)?;
    let points: usize = args.get_parse("points", 9usize)?;
    let burn: usize = args.get_parse("burn", 400usize)?;
    let sweeps: usize = args.get_parse("sweeps", 1600usize)?;
    let json = args.has_flag("json");
    if points < 2 || from >= to {
        return Err(ArgError("need --points ≥ 2 and --from < --to".into()));
    }

    let be = backend(args)?;
    init_observability(args, false);
    let temps: Vec<f64> = (0..points)
        .map(|i| (from + (to - from) * i as f64 / (points - 1) as f64) * T_CRITICAL)
        .collect();
    let mut curves = Vec::new();
    for &l in &sizes {
        let tile = (l / 4).clamp(2, 16);
        let mut values = Vec::new();
        for &t in &temps {
            let init = if t < T_CRITICAL {
                cold_plane::<f32>(l, l)
            } else {
                random_plane::<f32>(l as u64, l, l)
            };
            let mut sim =
                CompactIsing::from_plane(&init, tile, 1.0 / t, Randomness::bulk(l as u64 * 31))
                    .with_backend(be);
            let label = format!("scan L={l} T/Tc={:.3}", t / T_CRITICAL);
            let stats = run_chain_labeled(&mut sim, burn, sweeps, &label);
            values.push(stats.binder);
        }
        if !json {
            println!("L = {l:>4}: U4 = {values:.4?}");
        }
        curves.push(SizeCurve { l, temps: temps.clone(), values });
    }
    let tc = binder_tc_estimate(&curves);
    if json {
        println!(
            "{}",
            serde_json::json!({
                "temps": temps,
                "curves": curves.iter().map(|c| serde_json::json!({"l": c.l, "u4": c.values})).collect::<Vec<_>>(),
                "tc_estimate": tc,
                "tc_exact": T_CRITICAL,
            })
        );
    } else {
        match tc {
            Some(tc) => println!(
                "Binder crossing Tc ≈ {tc:.4}  (exact {:.4}, deviation {:+.2}%)",
                T_CRITICAL,
                (tc / T_CRITICAL - 1.0) * 100.0
            ),
            None => println!("no crossing found in the scan window"),
        }
    }
    Ok(())
}

/// `pod` — distributed SPMD run. Routing is capability-driven: any
/// mesh-capable algorithm works, replica-parallel engines take the packed
/// pod path, and everything scalar funnels through one generic body
/// instantiated per (algo, dtype) by [`with_scalar_engine`].
pub fn pod(args: &Args) -> Result<(), ArgError> {
    let algo: Algo = args.get_or("algo", "compact").parse().map_err(ArgError)?;
    let caps = algo.caps();
    if !caps.mesh {
        return Err(ArgError(format!(
            "--algo {algo} has no mesh support (pod needs halo exchange)"
        )));
    }
    if caps.replicas > 1 {
        return pod_multispin(args);
    }
    let dtype: Dtype = args.get_or("dtype", "f32").parse().map_err(ArgError)?;
    struct PodCmd<'a> {
        args: &'a Args,
        algo: Algo,
    }
    impl ScalarEngineVisitor for PodCmd<'_> {
        type Out = Result<(), ArgError>;
        fn visit<S, E>(self) -> Self::Out
        where
            S: Scalar + RandomUniform + 'static,
            E: ScalarMeshEngine<S> + Send + 'static,
        {
            pod_scalar::<S, E>(self.args, self.algo)
        }
    }
    with_scalar_engine(algo, dtype, PodCmd { args, algo }).map_err(ArgError)?
}

/// The scalar `pod` body, written once for every mesh engine.
fn pod_scalar<S, E>(args: &Args, algo: Algo) -> Result<(), ArgError>
where
    S: Scalar + RandomUniform + 'static,
    E: ScalarMeshEngine<S> + Send + 'static,
{
    let (nx, ny) = args.get_pair("torus", (2, 2))?;
    let (h, w) = args.get_pair("per-core", (64, 64))?;
    let t = temperature(args)?;
    let sweeps: usize = args.get_parse("sweeps", 50usize)?;
    let seed: u64 = args.get_parse("seed", 7u64)?;
    let tile = (h.min(w) / 4).clamp(1, 16);
    let trace_out = args.get("trace-out").map(str::to_string);
    // Fault-tolerance knobs.
    let opts = resilience_from_args(args, sweeps)?;
    let checkpoint_out = args.get("checkpoint-out").map(str::to_string);
    let keep: usize = args.get_parse_min("keep-generations", 3usize, 1)?;
    let resume_ckpt: Option<PodCheckpoint> = match args.get("resume") {
        Some(path) => Some(load_resume_with(path, POD_VAULT_KIND, keep, |json| {
            PodCheckpoint::from_json(json).map_err(|e| e.to_string())
        })?),
        None => None,
    };
    let want_metrics = init_observability(args, true);
    let telemetry = init_telemetry(args)?;
    if trace_out.is_some() {
        obs::reset();
        obs::enable_tracing();
    }
    let cfg = PodConfig {
        torus: Torus::new(nx, ny),
        per_core_h: h,
        per_core_w: w,
        tile,
        beta: 1.0 / t,
        seed,
        rng: if args.has_flag("site-keyed") { PodRng::SiteKeyed } else { PodRng::BulkSplit },
        backend: backend(args)?,
    };
    println!(
        "pod {nx}x{ny} cores, {algo}: per-core {h}x{w}, global {}x{}, T/Tc = {:.3}, {sweeps} sweeps",
        cfg.global_h(),
        cfg.global_w(),
        t / T_CRITICAL
    );
    if let Some(ck) = &resume_ckpt {
        println!(
            "resuming from sweep {} (snapshot taken on a {}x{} torus, {} rng)",
            ck.sweep_index, ck.nx, ck.ny, ck.rng_mode
        );
    }
    let vault = match &checkpoint_out {
        Some(path) => Some(vault_at(path, keep)?),
        None => None,
    };
    let t0 = std::time::Instant::now();
    let run = match &vault {
        Some(v) => run_pod_engine_vaulted::<S, E>(&cfg, sweeps, &opts, resume_ckpt, v),
        None => run_pod_engine_resilient::<S, E>(&cfg, sweeps, &opts, resume_ckpt),
    };
    finish_telemetry(telemetry);
    let run = run.map_err(|e| ArgError(e.to_string()))?;
    let dt = t0.elapsed().as_secs_f64();
    obs::disable();
    let result = &run.result;
    let n = cfg.sites() as f64;
    println!(
        "done in {dt:.2} s ({:.2} Msites/s); final |m| = {:.4}",
        n * sweeps as f64 / dt / 1e6,
        result.magnetization_sums.last().map(|m| m.abs() / n).unwrap_or(0.0)
    );
    if !run.faults_seen.is_empty() {
        println!("survived {} fault(s) with {} restart(s):", run.faults_seen.len(), run.restarts);
        for f in &run.faults_seen {
            println!("  {f}");
        }
    }
    if let Some(t) = run.degraded_to {
        println!("degraded continuation: finished on the {}x{} survivor torus", t.nx, t.ny);
    }
    if let Some(path) = &checkpoint_out {
        let ckpt = &run.final_checkpoint;
        let json = ckpt.to_json().map_err(|e| ArgError(e.to_string()))?;
        write_enveloped(path, POD_VAULT_KIND, ckpt.sweep_index, &json)?;
        println!("[pod checkpoint at sweep {} written to {path}]", ckpt.sweep_index);
    }

    if want_metrics {
        let m = obs::metrics();
        m.gauge("sweeps_per_s").set(sweeps as f64 / dt);
        m.gauge("spin_flips_per_s").set(m.snapshot().counter("flips_accepted_total") as f64 / dt);
        finalize_rate_gauges();
        print_metrics();
    }

    if let Some(path) = trace_out {
        let snap = obs::snapshot();

        // Per-core communication fraction, measured from the real SPMD
        // threads (the §5.2 observation: cp is a tiny share of the step).
        println!("\nper-core measured breakdown (kinded spans only):");
        for (name, b) in snap.per_track_breakdown() {
            let (mxu, vpu, fmt, cp) = b.percentages();
            println!(
                "  {name:<16} MXU {mxu:5.1}%  VPU {vpu:5.1}%  fmt {fmt:5.1}%  cp {cp:6.3}%  (comm fraction {:.3})",
                b.comm_fraction()
            );
        }

        // Aggregate measured view next to the modeled Table-3 view for the
        // same per-core geometry, sharing one TraceBreakdown shape.
        let measured = snap.breakdown();
        let variant: Variant = algo.name().parse().map_err(ArgError)?;
        let modeled = step_time(
            &TpuV3Params::v3(),
            &StepConfig {
                per_core_h: h,
                per_core_w: w,
                dtype_bytes: std::mem::size_of::<S>(),
                variant,
                mode: if nx * ny <= 1 {
                    ExecutionMode::SingleCore
                } else {
                    ExecutionMode::Distributed { cores: nx * ny }
                },
            },
        );
        let (mm, mv, mf, mc) = measured.percentages();
        let (dm, dv, df, dc) = modeled.percentages();
        println!("\nbreakdown, measured CPU threads vs modeled TPU v3 (same geometry):");
        println!("  measured  MXU {mm:5.1}%  VPU {mv:5.1}%  fmt {mf:5.1}%  cp {mc:6.3}%");
        println!("  modeled   MXU {dm:5.1}%  VPU {dv:5.1}%  fmt {df:5.1}%  cp {dc:6.3}%");

        let json = obs::chrome_trace_json(&snap, "tpu-ising pod");
        std::fs::write(&path, json)
            .map_err(|e| ArgError(format!("cannot write --trace-out {path}: {e}")))?;
        println!(
            "\n[chrome trace written to {path}: {} spans on {} core tracks — open in chrome://tracing or https://ui.perfetto.dev]",
            snap.spans.len(),
            snap.tracks.len()
        );
    }
    Ok(())
}

/// `pod --algo multispin` — the packed engine on the SPMD mesh: 64
/// replicas per word, packed-word halo exchange (32× fewer halo bytes than
/// f32), always site-keyed, same fault-tolerance knobs as the compact pod.
fn pod_multispin(args: &Args) -> Result<(), ArgError> {
    let (nx, ny) = args.get_pair("torus", (2, 2))?;
    let (h, w) = args.get_pair("per-core", (64, 64))?;
    let t = temperature(args)?;
    let sweeps: usize = args.get_parse("sweeps", 50usize)?;
    let seed: u64 = args.get_parse("seed", 7u64)?;
    let opts = resilience_from_args(args, sweeps)?;
    let checkpoint_out = args.get("checkpoint-out").map(str::to_string);
    let keep: usize = args.get_parse_min("keep-generations", 3usize, 1)?;
    let resume_ckpt: Option<MultiSpinPodCheckpoint> = match args.get("resume") {
        Some(path) => Some(load_resume_with(path, MULTISPIN_VAULT_KIND, keep, |json| {
            MultiSpinPodCheckpoint::from_json(json).map_err(|e| e.to_string())
        })?),
        None => None,
    };
    let want_metrics = init_observability(args, false);
    let telemetry = init_telemetry(args)?;
    let cfg = MultiSpinPodConfig {
        torus: Torus::new(nx, ny),
        per_core_h: h,
        per_core_w: w,
        beta: 1.0 / t,
        seed,
    };
    println!(
        "pod {nx}x{ny} cores, multispin: per-core {h}x{w}, global {}x{}, 64 replicas, T/Tc = {:.3}, {sweeps} sweeps",
        cfg.global_h(),
        cfg.global_w(),
        t / T_CRITICAL
    );
    {
        let isa = tpu_ising_rng::simd::isa();
        println!("multispin dispatch: {} ({} planes/feed)", isa.name(), isa.lanes());
    }
    if let Some(ck) = &resume_ckpt {
        println!(
            "resuming from sweep {} (snapshot taken on a {}x{} torus)",
            ck.sweep_index, ck.nx, ck.ny
        );
    }
    let vault = match &checkpoint_out {
        Some(path) => Some(vault_at(path, keep)?),
        None => None,
    };
    let t0 = std::time::Instant::now();
    let run = match &vault {
        Some(v) => run_multispin_pod_vaulted(&cfg, sweeps, &opts, resume_ckpt, v),
        None => run_multispin_pod_resilient(&cfg, sweeps, &opts, resume_ckpt),
    };
    finish_telemetry(telemetry);
    let run = run.map_err(|e| ArgError(e.to_string()))?;
    let dt = t0.elapsed().as_secs_f64();
    obs::disable();
    let result = &run.result;
    let n = cfg.sites() as f64;
    let mean_abs = result
        .replica_magnetizations
        .last()
        .map(|last| last.iter().map(|m| m.abs() / n).sum::<f64>() / REPLICAS as f64)
        .unwrap_or(0.0);
    println!(
        "done in {dt:.2} s ({:.3} flips/ns aggregate); final ⟨|m|⟩ over 64 replicas = {mean_abs:.4}",
        cfg.flips_per_sweep() as f64 * sweeps as f64 / dt / 1e9
    );
    if !run.faults_seen.is_empty() {
        println!("survived {} fault(s) with {} restart(s):", run.faults_seen.len(), run.restarts);
        for f in &run.faults_seen {
            println!("  {f}");
        }
    }
    if let Some(t) = run.degraded_to {
        println!("degraded continuation: finished on the {}x{} survivor torus", t.nx, t.ny);
    }
    if let Some(path) = &checkpoint_out {
        let ckpt = &run.final_checkpoint;
        let json = ckpt.to_json().map_err(|e| ArgError(e.to_string()))?;
        write_enveloped(path, MULTISPIN_VAULT_KIND, ckpt.sweep_index, &json)?;
        println!("[multispin pod checkpoint at sweep {} written to {path}]", ckpt.sweep_index);
    }
    if want_metrics {
        let m = obs::metrics();
        m.gauge("sweeps_per_s").set(sweeps as f64 / dt);
        m.gauge("spin_flips_per_s").set(m.snapshot().counter("flips_accepted_total") as f64 / dt);
        finalize_rate_gauges();
        print_metrics();
    }
    Ok(())
}

/// `chaos` — the deterministic chaos drill: run a seeded schedule of
/// kills, packet drops, delays and checkpoint-file corruptions against a
/// vault-backed pod, then verify the surviving run is bit-exact with an
/// uninterrupted reference. Exits non-zero if determinism is broken.
pub fn chaos(args: &Args) -> Result<(), ArgError> {
    let algo: Algo = args.get_or("algo", "compact").parse().map_err(ArgError)?;
    let caps = algo.caps();
    if !caps.mesh || !caps.checkpoint {
        return Err(ArgError(format!(
            "--algo {algo} cannot run the chaos drill (needs mesh + checkpoint support)"
        )));
    }
    let (nx, ny) = args.get_pair("torus", (2, 2))?;
    let (h, w) = args.get_pair("per-core", (16, 16))?;
    let t = temperature(args)?;
    let sweeps: usize = args.get_parse("sweeps", 8usize)?;
    let seed: u64 = args.get_parse("seed", 7u64)?;
    let chaos_seed: u64 = args.get_parse("chaos-seed", 1u64)?;
    let sessions: usize = args.get_parse_min("sessions", 3usize, 1)?;
    let checkpoint_every: usize = args.get_parse_min("checkpoint-every", 2usize, 1)?;
    let keep: usize = args.get_parse_min("keep-generations", 3usize, 1)?;
    let vault_dir = args.get_or("vault-dir", "chaos-vault").to_string();
    let cores = nx * ny;
    let runtime = mesh_runtime_from_args(args)?;
    let _want_metrics = init_observability(args, false);
    let telemetry = init_telemetry(args)?;
    // Both pod engines issue ~8 collectives per sweep per core; spread the
    // injected faults across the whole run so some land late.
    let span = (sweeps as u64).saturating_mul(8).max(1);
    // `--kill-fraction F` switches to the mass-preemption schedule: every
    // session takes out ⌈F·cores⌉ distinct cores at once, the paper-scale
    // drill where a maintenance event claims a slice of the pod.
    let kill_fraction: Option<f64> = args.get_opt_parse("kill-fraction")?;
    // `--integrity` swaps the crash schedule for the silent-data-corruption
    // one: lattice bit flips, corrupted halo payloads and wedged cores.
    let integrity = args.has_flag("integrity");
    let plan = if integrity {
        if kill_fraction.is_some() {
            return Err(ArgError("--integrity and --kill-fraction are mutually exclusive".into()));
        }
        ChaosPlan::generate_integrity(chaos_seed, sessions, cores, sweeps as u64)
    } else {
        match kill_fraction {
            Some(f) => {
                if !(0.0..=1.0).contains(&f) {
                    return Err(ArgError(format!("--kill-fraction {f} must be within [0, 1]")));
                }
                ChaosPlan::generate_mass_kill(chaos_seed, sessions, cores, span, f)
            }
            None => ChaosPlan::generate(chaos_seed, sessions, cores, span),
        }
    };
    // The scrubber/watchdog arm explicitly via flags; a bare `--integrity`
    // drill arms both at the tight CI cadence, and `--disarmed` forces the
    // divergence demonstration (injections land with nobody watching).
    let knobs = if args.has_flag("disarmed") {
        IntegrityKnobs::default()
    } else if args.get("scrub-every").is_some() || args.get("watchdog-timeout-ms").is_some() {
        IntegrityKnobs {
            scrub_every: args.get_opt_parse("scrub-every")?.map(|n: u64| n.max(1)),
            watchdog_timeout: args
                .get_opt_parse("watchdog-timeout-ms")?
                .map(std::time::Duration::from_millis),
        }
    } else if integrity {
        IntegrityKnobs::armed()
    } else {
        IntegrityKnobs::default()
    };
    let armed = knobs.scrub_every.is_some() || knobs.watchdog_timeout.is_some();
    println!(
        "chaos drill: {algo} pod {nx}x{ny}, per-core {h}x{w}, {sweeps} sweeps, \
         {sessions} crash session(s), chaos seed {chaos_seed}, vault in {vault_dir}/"
    );
    let report = if caps.replicas > 1 {
        let cfg = MultiSpinPodConfig {
            torus: Torus::new(nx, ny),
            per_core_h: h,
            per_core_w: w,
            beta: 1.0 / t,
            seed,
        };
        run_chaos_multispin_rt(
            &cfg,
            sweeps,
            checkpoint_every,
            &plan,
            std::path::Path::new(&vault_dir),
            keep,
            runtime,
            knobs,
        )
    } else {
        let dtype: Dtype = args.get_or("dtype", "f32").parse().map_err(ArgError)?;
        let tile = (h.min(w) / 4).clamp(1, 16);
        let cfg = PodConfig {
            torus: Torus::new(nx, ny),
            per_core_h: h,
            per_core_w: w,
            tile,
            beta: 1.0 / t,
            seed,
            rng: PodRng::SiteKeyed,
            backend: backend(args)?,
        };
        struct ChaosCmd<'a> {
            cfg: &'a PodConfig,
            sweeps: usize,
            checkpoint_every: usize,
            plan: &'a ChaosPlan,
            vault_dir: &'a std::path::Path,
            keep: usize,
            runtime: MeshRuntime,
            knobs: IntegrityKnobs,
        }
        impl ScalarEngineVisitor for ChaosCmd<'_> {
            type Out = Result<ChaosReport, PodError>;
            fn visit<S, E>(self) -> Self::Out
            where
                S: Scalar + RandomUniform + 'static,
                E: ScalarMeshEngine<S> + Send + 'static,
            {
                run_chaos_engine_rt::<S, E>(
                    self.cfg,
                    self.sweeps,
                    self.checkpoint_every,
                    self.plan,
                    self.vault_dir,
                    self.keep,
                    self.runtime,
                    self.knobs,
                )
            }
        }
        with_scalar_engine(
            algo,
            dtype,
            ChaosCmd {
                cfg: &cfg,
                sweeps,
                checkpoint_every,
                plan: &plan,
                vault_dir: std::path::Path::new(&vault_dir),
                keep,
                runtime,
                knobs,
            },
        )
        .map_err(ArgError)?
    };
    finish_telemetry(telemetry);
    let report = report.map_err(|e| ArgError(e.to_string()))?;
    println!(
        "sessions run      : {} ({} crashed, {} corruption(s) injected)",
        report.sessions, report.crashes, report.corruptions
    );
    println!("quarantined       : {} corrupt generation(s)", report.quarantined);
    println!("from scratch      : {} resume(s) found no valid generation", report.from_scratch);
    println!("final sweep       : {}", report.final_sweep);
    println!(
        "scrub detections  : {} lattice/halo, {} watchdog stall(s)",
        report.scrub_detected, report.stalls_detected
    );
    println!("bit-exact resume  : {}", if report.bit_exact { "yes" } else { "NO" });
    // Distinct exit codes so CI can tell the three outcomes apart:
    //   0 = every injection was detected and recovered bit-exactly
    //   1 = divergence with integrity checks off (the expected demo)
    //   2 = undetected corruption: the scrubber was armed yet the final
    //       state still differs from the reference — the alarming case.
    if !report.bit_exact {
        if armed {
            eprintln!(
                "error: UNDETECTED CORRUPTION — scrubber armed but the final state \
                 diverged from the uninterrupted reference"
            );
            std::process::exit(2);
        }
        eprintln!(
            "error: chaos run diverged from the uninterrupted reference \
             (integrity checks disarmed)"
        );
        std::process::exit(1);
    }
    Ok(())
}

/// `model` — modeled TPU v3 performance of a configuration.
pub fn model(args: &Args) -> Result<(), ArgError> {
    let cores: usize = args.get_parse("cores", 2usize)?;
    let (h, w) = args.get_pair("per-core", (896, 448))?;
    let variant: Variant = args.get_or("variant", "compact").parse().map_err(ArgError)?;
    let dtype_bytes = match args.get_or("dtype", "bf16") {
        "bf16" => 2,
        "f32" => 4,
        other => return Err(ArgError(format!("unknown --dtype '{other}'"))),
    };
    let p = TpuV3Params::v3();
    let cfg = StepConfig {
        per_core_h: h * 128,
        per_core_w: w * 128,
        dtype_bytes,
        variant,
        mode: if cores <= 1 {
            ExecutionMode::SingleCore
        } else {
            ExecutionMode::Distributed { cores }
        },
    };
    let bd = step_time(&p, &cfg);
    let f = throughput_flips_per_ns(&p, &cfg);
    let (mxu, vpu, fmt, cp) = bd.percentages();
    let r = roofline(&p, &cfg);
    println!(
        "config: {cores} core(s), per-core [{h}x128, {w}x128], {variant:?}, {} B/spin",
        dtype_bytes
    );
    println!("  step time    : {:.2} ms", bd.total() * 1e3);
    println!("  throughput   : {f:.2} flips/ns  ({:.4} per core)", f / cores as f64);
    println!("  energy       : {:.4} nJ/flip", energy_nj_per_flip(p.power_w * cores as f64, f));
    println!("  breakdown    : MXU {mxu:.1}%  VPU {vpu:.1}%  fmt {fmt:.1}%  cp {cp:.3}%");
    println!(
        "  roofline     : {:.1}% of optimum, {:.1}% of peak, {}",
        r.pct_of_roofline(),
        r.pct_of_peak(),
        if r.memory_bound { "memory bound" } else { "compute bound" }
    );
    Ok(())
}

/// `anneal` — simulated annealing on a random ±J spin glass.
pub fn anneal(args: &Args) -> Result<(), ArgError> {
    use tpu_ising_core::anneal::{anneal, greedy_quench, spin_glass_instance, Schedule};
    let l: usize = args.get_parse("size", 24usize)?;
    let budget: usize = args.get_parse("budget", 960usize)?;
    let seed: u64 = args.get_parse("seed", 1u64)?;
    let inst = spin_glass_instance(l, l, seed);
    let schedule = Schedule::default_for(budget);
    println!(
        "±J spin glass, {l}x{l}, {} stages x {} sweeps ({} total), T {:.2} → {:.2}",
        schedule.stages,
        schedule.sweeps_per_stage,
        schedule.stages * schedule.sweeps_per_stage,
        schedule.t_start,
        schedule.t_end
    );
    let greedy = greedy_quench::<f32>(inst.clone(), l, l, budget, seed);
    let t0 = std::time::Instant::now();
    let result = anneal::<f32>(inst, l, l, schedule, seed);
    println!(
        "annealed best energy : {:.1}  ({:.2} s)",
        result.best_energy,
        t0.elapsed().as_secs_f64()
    );
    println!("greedy quench energy : {greedy:.1}  (same sweep budget)");
    println!(
        "per-site             : annealed {:.4}, greedy {:.4}",
        result.best_energy / (l * l) as f64,
        greedy / (l * l) as f64
    );
    println!("\ncooling trace (energy after each stage):");
    for (i, e) in result.stage_energies.iter().enumerate() {
        println!("  stage {i:>2} (T = {:>5.2}): {e:>9.1}", schedule.temperature(i));
    }
    Ok(())
}

/// `temper` — parallel-tempering demo.
pub fn temper(args: &Args) -> Result<(), ArgError> {
    use tpu_ising_core::tempering::Tempering;
    let l: usize = args.get_parse("size", 24usize)?;
    let replicas: usize = args.get_parse("replicas", 6usize)?;
    let rounds: u64 = args.get_parse("rounds", 200u64)?;
    let tile = (l / 4).clamp(2, 16);
    let mut t = Tempering::<f32>::new(l, tile, 0.6 * T_CRITICAL, 3.0 * T_CRITICAL, replicas, 11);
    println!(
        "parallel tempering: {l}x{l}, {replicas} replicas, T ∈ [{:.2}, {:.2}], {rounds} rounds",
        0.6 * T_CRITICAL,
        3.0 * T_CRITICAL
    );
    t.run(rounds);
    println!("swap acceptance: {:.1}%", t.swap_acceptance() * 100.0);
    println!("\nrung ladder after equilibration:");
    let n = (l * l) as f64;
    for i in 0..t.len() {
        let r = t.replica(i);
        println!(
            "  rung {i}: T = {:>5.3}  |m| = {:.3}  E/N = {:+.3}",
            1.0 / r.beta(),
            tpu_ising_core::Sweeper::magnetization_sum(r).abs() / n,
            tpu_ising_core::Sweeper::energy_sum(r) / n
        );
    }
    Ok(())
}

/// `hlo` — dump the update-step graph.
pub fn hlo(args: &Args) -> Result<(), ArgError> {
    let (m, n) = args.get_pair("grid", (2, 2))?;
    let tile: usize = args.get_parse("tile", 8usize)?;
    let beta: f64 = args.get_parse("beta", 1.0 / T_CRITICAL)?;
    let color = match args.get_or("color", "black") {
        "black" => Color::Black,
        "white" => Color::White,
        other => return Err(ArgError(format!("unknown --color '{other}'"))),
    };
    let built = tpu_ising_core::hlo_frontend::build_compact_color_step(
        m,
        n,
        tile,
        beta,
        color,
        tpu_ising_hlo::Dtype::Bf16,
    );
    let (graph, roots) = if args.has_flag("optimize") {
        let (g, r) = tpu_ising_hlo::passes::const_fold(&built.graph, &built.outputs);
        let (g, r) = tpu_ising_hlo::passes::cse(&g, &r);
        let (g, r) = tpu_ising_hlo::passes::algebraic_simplify(&g, &r);
        tpu_ising_hlo::passes::dce(&g, &r)
    } else {
        (built.graph, built.outputs.to_vec())
    };
    tpu_ising_hlo::printer::verify(&graph).map_err(|e| ArgError(e.to_string()))?;
    print!("{}", tpu_ising_hlo::printer::print_graph(&graph, &roots));
    Ok(())
}

/// `postmortem` — merge the flight recorder's `postmortem-*.jsonl`
/// bundles from every core and restart generation into one globally
/// ordered timeline (human table, optional Chrome-trace export).
pub fn postmortem(args: &Args) -> Result<(), ArgError> {
    let dir = args.get_or("dir", "telemetry");
    let (events, bundles) = obs::postmortem::merge_dir(std::path::Path::new(dir))
        .map_err(|e| ArgError(format!("cannot read postmortem bundles in '{dir}': {e}")))?;
    if bundles.is_empty() {
        return Err(ArgError(format!(
            "no postmortem-*.jsonl bundles found in '{dir}' \
             (run `tpu-ising pod`/`chaos` with --telemetry-dir {dir} first)"
        )));
    }
    let generations = events.iter().map(|e| e.gen).max().map_or(0, |g| u64::from(g) + 1);
    let mut cores: Vec<u32> = events.iter().filter(|e| !e.is_host()).map(|e| e.core).collect();
    cores.sort_unstable();
    cores.dedup();
    println!(
        "merged {} event(s) from {} bundle(s) in {dir}/ — {} generation(s), {} core track(s) + host\n",
        events.len(),
        bundles.len(),
        generations,
        cores.len()
    );
    print!("{}", obs::postmortem::render_table(&events));
    if let Some(path) = args.get("trace-out") {
        let json = obs::postmortem::chrome_timeline_json(&events, "tpu-ising postmortem");
        std::fs::write(path, json)
            .map_err(|e| ArgError(format!("cannot write --trace-out {path}: {e}")))?;
        println!(
            "\n[chrome timeline written to {path}: one track per core per generation — \
             open in chrome://tracing or https://ui.perfetto.dev]"
        );
    }
    Ok(())
}
