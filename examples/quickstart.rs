//! Quickstart: simulate a 2-D Ising lattice with the TPU-mapped compact
//! checkerboard algorithm and check the magnetization against Onsager's
//! exact solution.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use tpu_ising_core::{cold_plane, onsager, run_chain, CompactIsing, Randomness, T_CRITICAL};

fn main() {
    // A 64×64 lattice at T = 0.9·Tc, stored as a grid of 16×16 tiles the
    // way the paper tiles lattices for the TPU's matrix unit.
    let l = 64;
    let t = 0.9 * T_CRITICAL;
    let beta = 1.0 / t;
    println!("2-D Ising model, L = {l}, T = 0.9·Tc = {t:.4} (β = {beta:.4})");

    let mut sim =
        CompactIsing::from_plane(&cold_plane::<f32>(l, l), 16, beta, Randomness::bulk(42));

    // Burn in 500 sweeps, then measure over 2000 — the miniature of the
    // paper's 10⁵ + 9·10⁵ protocol.
    let stats = run_chain(&mut sim, 500, 2000);

    println!("⟨|m|⟩  = {:.4} ± {:.4}", stats.mean_abs_m, stats.err_abs_m);
    println!("U4     = {:.4}", stats.binder);
    println!("⟨E⟩/N  = {:.4} ± {:.4}", stats.mean_energy, stats.err_energy);
    println!(
        "Onsager: m = {:.4},  u = {:.4}",
        onsager::magnetization(t),
        onsager::energy_per_site(t)
    );

    let dev = (stats.mean_abs_m - onsager::magnetization(t)).abs();
    println!(
        "\nmagnetization within {:.4} of the exact infinite-lattice value{}",
        dev,
        if dev < 0.02 { " ✓" } else { " (finite-size effects)" }
    );
}
