//! bfloat16 vs float32 — a miniature of the paper's precision study.
//!
//! The TPU's matrix unit natively multiplies in bfloat16; the paper's
//! claim is that running the whole Monte Carlo update at bf16 leaves the
//! physics intact. This example runs the same chains at both precisions
//! and prints the observables side by side, plus where the two precisions
//! actually differ (the acceptance-ratio grid).
//!
//! ```bash
//! cargo run --release --example precision_study
//! ```

use tpu_ising_bf16::Bf16;
use tpu_ising_core::{
    cold_plane, onsager, run_chain, CompactIsing, Randomness, Scalar, T_CRITICAL,
};

fn chain<S: Scalar + tpu_ising_rng::RandomUniform>(l: usize, t: f64, seed: u64) -> (f64, f64) {
    let mut sim =
        CompactIsing::from_plane(&cold_plane::<S>(l, l), 16, 1.0 / t, Randomness::bulk(seed));
    let stats = run_chain(&mut sim, 400, 1600);
    (stats.mean_abs_m, stats.binder)
}

fn main() {
    // First: where do the precisions differ *mechanically*? The acceptance
    // ratios exp(−2β·σ·nn) land on a coarser grid at bf16.
    let beta = 1.0 / T_CRITICAL;
    println!("acceptance ratios at Tc (σ·nn > 0 branch):");
    println!("{:>6}  {:>12}  {:>12}  {:>10}", "σ·nn", "f32", "bf16", "rel err");
    for snn in [2.0f32, 4.0] {
        let f = (snn * (-2.0 * beta) as f32).exp();
        let b = ((Bf16::from_f32(snn) * Bf16::from_f32((-2.0 * beta) as f32)).exp()).to_f32();
        println!("{snn:>6}  {f:>12.6}  {b:>12.6}  {:>10.2e}", (f - b).abs() / f);
    }

    // Then: does it matter? Same protocol, both precisions.
    let l = 64;
    println!("\nL = {l}, 400 burn-in + 1600 measured sweeps per point:");
    println!(
        "{:>6}  {:>9} {:>9}  {:>9} {:>9}  {:>9}",
        "T/Tc", "m f32", "m bf16", "U4 f32", "U4 bf16", "Onsager"
    );
    for tt in [0.8, 0.9, 0.95, 1.0, 1.05, 1.1, 1.3] {
        let t = tt * T_CRITICAL;
        let (mf, uf) = chain::<f32>(l, t, 7);
        let (mb, ub) = chain::<Bf16>(l, t, 7);
        println!(
            "{tt:>6.2}  {mf:>9.4} {mb:>9.4}  {uf:>9.4} {ub:>9.4}  {:>9.4}",
            onsager::magnetization(t)
        );
    }
    println!("\nthe paper's verdict: \"using bfloat16 has negligible impact on Ising");
    println!("model simulation\" — and it halves the memory, doubling the maximum");
    println!("lattice a TPU core can hold ((656·128)² instead of (464·128)²).");
}
