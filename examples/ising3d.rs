//! Three-dimensional Ising model — the generalization the paper's
//! conclusion proposes ("the algorithm used in this work can be
//! generalized for three-dimensional Ising model").
//!
//! Sweeps the temperature through the 3-D critical point
//! Tc ≈ 4.5115 (no closed form exists in 3-D; this is the high-precision
//! Monte Carlo value from the Ferrenberg–Xu–Landau work the paper cites).
//!
//! ```bash
//! cargo run --release --example ising3d
//! ```

use tpu_ising_core::{run_chain, Ising3D, Randomness, Sweeper, T_CRITICAL_3D};

fn main() {
    let l = 10;
    println!("3-D Ising, {l}³ lattice, checkerboard Metropolis (parity of x+y+z)");
    println!("Tc(3D) ≈ {T_CRITICAL_3D:.4}\n");
    println!("{:>7} {:>8} {:>9} {:>9} {:>8}", "T/Tc", "T", "⟨|m|⟩", "⟨E⟩/N", "U4");
    for tt in [0.7, 0.85, 0.95, 1.0, 1.05, 1.2, 1.5] {
        let t = tt * T_CRITICAL_3D;
        let mut sim = if tt < 1.0 {
            Ising3D::<f32>::cold(l, l, l, 1.0 / t, Randomness::bulk(17))
        } else {
            Ising3D::<f32>::hot(l, l, l, 1.0 / t, 17, Randomness::bulk(17))
        };
        let stats = run_chain(&mut sim, 300, 1200);
        println!(
            "{tt:>7.2} {t:>8.3} {:>9.4} {:>9.4} {:>8.4}",
            stats.mean_abs_m, stats.mean_energy, stats.binder
        );
    }
    println!("\nordered below Tc(3D), disordered above — the checkerboard update");
    println!("carries over because all six neighbors of a site have opposite parity.");

    // β = 0 sanity: the 3-D ground-state energy is −3 per site (3 bonds).
    let ground = Ising3D::<f32>::cold(6, 6, 6, 1.0, Randomness::bulk(1));
    println!("\nground-state energy per site: {} (exact −3)", ground.energy_sum() / 216.0);
}
