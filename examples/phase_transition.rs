//! Locate the critical temperature with the Binder-cumulant crossing —
//! the paper's Fig. 4 methodology as a workflow.
//!
//! U₄(T) curves for different lattice sizes intersect at Tc, because the
//! cumulant is scale-invariant exactly at criticality. We scan T for two
//! sizes, find where the curves cross, and compare with Onsager's exact
//! Tc = 2/ln(1+√2) ≈ 2.2692.
//!
//! ```bash
//! cargo run --release --example phase_transition
//! ```

use tpu_ising_core::{cold_plane, random_plane, run_chain, CompactIsing, Randomness, T_CRITICAL};

fn binder_at(l: usize, t: f64, seed: u64) -> f64 {
    let beta = 1.0 / t;
    let init =
        if t < T_CRITICAL { cold_plane::<f32>(l, l) } else { random_plane::<f32>(seed, l, l) };
    let tile = (l / 4).clamp(2, 16);
    let mut sim = CompactIsing::from_plane(&init, tile, beta, Randomness::bulk(seed));
    run_chain(&mut sim, 400, 1600).binder
}

fn main() {
    let sizes = [16usize, 32];
    let temps: Vec<f64> = (0..9).map(|i| (0.92 + 0.02 * i as f64) * T_CRITICAL).collect();

    println!("Binder cumulant scan, L = {sizes:?}");
    println!("{:>8}  {:>10}  {:>10}  {:>10}", "T/Tc", "U4(L=16)", "U4(L=32)", "diff");
    let mut curves = vec![Vec::new(); sizes.len()];
    for (i, &l) in sizes.iter().enumerate() {
        for &t in &temps {
            curves[i].push(binder_at(l, t, 1000 + l as u64));
        }
    }
    for (j, &t) in temps.iter().enumerate() {
        println!(
            "{:>8.3}  {:>10.4}  {:>10.4}  {:>+10.4}",
            t / T_CRITICAL,
            curves[0][j],
            curves[1][j],
            curves[1][j] - curves[0][j]
        );
    }

    // Crossing estimate: where the difference U4(L2) − U4(L1) changes sign.
    // Below Tc the larger lattice has the larger cumulant; above, smaller.
    let mut tc_estimate = None;
    for j in 1..temps.len() {
        let d0 = curves[1][j - 1] - curves[0][j - 1];
        let d1 = curves[1][j] - curves[0][j];
        if d0 >= 0.0 && d1 < 0.0 {
            // linear interpolation of the sign change
            let f = d0 / (d0 - d1);
            tc_estimate = Some(temps[j - 1] + f * (temps[j] - temps[j - 1]));
            break;
        }
    }
    match tc_estimate {
        Some(tc) => {
            println!(
                "\nBinder crossing at T = {:.4} → Tc/Tc_exact = {:.4} (exact Tc = {:.4})",
                tc,
                tc / T_CRITICAL,
                T_CRITICAL
            );
        }
        None => println!("\nno crossing detected in the scanned window (increase samples)"),
    }
}
