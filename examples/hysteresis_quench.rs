//! Temperature quench and domain coarsening — a physics workload beyond
//! the paper's benchmarks, exercising `set_beta` mid-chain and the
//! GPU-style baseline sampler for speed.
//!
//! The lattice is equilibrated in the hot phase (T = 2·Tc), then quenched
//! deep below Tc. The ordered domains grow with a characteristic
//! power-law, visible as |m| creeping toward 1 while the energy decays
//! toward the ground state.
//!
//! ```bash
//! cargo run --release --example hysteresis_quench
//! ```

use tpu_ising_baseline::GpuStyleIsing;
use tpu_ising_core::{random_plane, Randomness, Sweeper, T_CRITICAL};

fn main() {
    let l = 96;
    let n = (l * l) as f64;
    let mut sim = GpuStyleIsing::new(
        random_plane::<f32>(11, l, l),
        1.0 / (2.0 * T_CRITICAL),
        Randomness::bulk(5),
    );

    println!("equilibrating {l}x{l} at T = 2·Tc ...");
    for _ in 0..200 {
        sim.sweep();
    }
    println!(
        "hot phase: |m| = {:.3}, E/N = {:.3}",
        sim.magnetization_sum().abs() / n,
        sim.energy_sum() / n
    );

    // Quench to T = 0.5·Tc.
    sim.set_beta(1.0 / (0.5 * T_CRITICAL));
    println!("\nquench to T = 0.5·Tc; coarsening:");
    println!("{:>7}  {:>7}  {:>8}  magnetization", "sweep", "|m|", "E/N");
    let mut sweep = 0;
    for block in 0..12 {
        let block_sweeps = 1 << block.min(8); // 1,2,4,...,256
        for _ in 0..block_sweeps {
            sim.sweep();
        }
        sweep += block_sweeps;
        let m = sim.magnetization_sum().abs() / n;
        let e = sim.energy_sum() / n;
        println!("{sweep:>7}  {m:>7.3}  {e:>8.3}  {}", "▇".repeat((m * 40.0) as usize));
    }
    println!(
        "\nfinal energy {:.3} vs ground state −2.0; residual domain walls \
         account for the gap",
        sim.energy_sum() / n
    );

    let (clusters, largest) = tpu_ising_core::visualize::domain_stats(sim.plane());
    println!("domains: {clusters} clusters, largest {largest} of {} sites", l * l);
    println!("\nfinal configuration (█ up, ░ down, ▒ mixed):");
    print!("{}", tpu_ising_core::visualize::ascii_render(sim.plane(), 24, 48));
}
