//! Non-uniform couplings J_ij — the design problem the paper's conclusion
//! sketches: "an interesting followup would be finding the optimal J_ij
//! given material properties for the case where J is not uniform across
//! all spin sites".
//!
//! We build a two-phase "material": a strongly coupled core (J = 2)
//! embedded in a weak matrix (J = 0.4), and watch the core stay magnetized
//! at a temperature where the matrix has already melted — then do a crude
//! one-parameter design search: what matrix coupling keeps the *whole*
//! sample ordered at the working temperature?
//!
//! ```bash
//! cargo run --release --example materials_design
//! ```

use tpu_ising_core::{cold_plane, Couplings, HeterogeneousIsing, Randomness, Sweeper, T_CRITICAL};

const L: usize = 48;

/// Couplings: J_core inside the centered L/2 × L/2 square, J_matrix outside.
fn two_phase(j_core: f32, j_matrix: f32) -> Couplings {
    let inside =
        |r: usize, c: usize| (L / 4..3 * L / 4).contains(&r) && (L / 4..3 * L / 4).contains(&c);
    Couplings::from_fn(
        L,
        L,
        move |r, c| if inside(r, c) { j_core } else { j_matrix },
        move |r, c| if inside(r, c) { j_core } else { j_matrix },
    )
}

/// Mean |m| in a region after equilibration.
fn region_m(sim: &HeterogeneousIsing<f32>, core: bool) -> f64 {
    let mut acc = 0.0;
    let mut n = 0usize;
    for r in 0..L {
        for c in 0..L {
            let inside = (L / 4..3 * L / 4).contains(&r) && (L / 4..3 * L / 4).contains(&c);
            if inside == core {
                acc += sim.plane().get(r, c) as f64;
                n += 1;
            }
        }
    }
    (acc / n as f64).abs()
}

fn equilibrated(j_matrix: f32, t: f64, sweeps: usize) -> HeterogeneousIsing<f32> {
    let mut sim = HeterogeneousIsing::new(
        cold_plane::<f32>(L, L),
        two_phase(2.0, j_matrix),
        1.0 / t,
        Randomness::bulk(9),
    );
    for _ in 0..sweeps {
        sim.sweep();
    }
    sim
}

fn main() {
    // Working temperature: above the uniform J=0.4 material's ordering
    // temperature (Tc scales ~J) but below the core's.
    let t = 1.1 * T_CRITICAL;
    println!("two-phase material, {L}x{L}, J_core = 2.0, J_matrix = 0.4, T = 1.1·Tc(J=1)\n");
    let sim = equilibrated(0.4, t, 800);
    println!("core  |m| = {:.3}  (strongly coupled: stays ferromagnetic)", region_m(&sim, true));
    println!("matrix|m| = {:.3}  (weakly coupled: melted)", region_m(&sim, false));

    // Design sweep: smallest matrix coupling that keeps the matrix ordered
    // (|m| > 0.8) at the working temperature.
    println!("\ndesign sweep over J_matrix at T = 1.1·Tc:");
    println!("{:>9} {:>12} {:>12}", "J_matrix", "matrix |m|", "ordered?");
    let mut chosen = None;
    for jm in [0.4f32, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6] {
        let sim = equilibrated(jm, t, 500);
        let m = region_m(&sim, false);
        let ok = m > 0.8;
        println!("{jm:>9.1} {m:>12.3} {:>12}", if ok { "yes" } else { "no" });
        if ok && chosen.is_none() {
            chosen = Some(jm);
        }
    }
    match chosen {
        Some(jm) => println!(
            "\n→ J_matrix ≈ {jm} suffices; consistent with Tc(J) = J·Tc(1): \
             need J ≳ 1.1·ln-corrections"
        ),
        None => println!("\n→ no tested J_matrix orders the matrix at this temperature"),
    }
}
