//! Distributed SPMD simulation on a modeled TPU-pod slice: real threads,
//! real collective-permute halo exchange, plus the calibrated performance
//! model's prediction of what the same shape would do on actual TPU v3
//! hardware.
//!
//! ```bash
//! cargo run --release --example pod_simulation
//! ```

use tpu_ising_core::distributed::{run_pod, PodConfig, PodRng};
use tpu_ising_core::T_CRITICAL;
use tpu_ising_device::cost::{
    step_time, throughput_flips_per_ns, ExecutionMode, StepConfig, Variant,
};
use tpu_ising_device::mesh::Torus;
use tpu_ising_device::params::TpuV3Params;

fn main() {
    // Functional run: 2×2 "cores" (threads), 128×128 lattice window each.
    let cfg = PodConfig {
        torus: Torus::new(2, 2),
        per_core_h: 128,
        per_core_w: 128,
        tile: 32,
        beta: 1.0 / (0.95 * T_CRITICAL),
        seed: 2024,
        rng: PodRng::BulkSplit,
        backend: tpu_ising_core::KernelBackend::Band,
    };
    let sweeps = 60;
    println!(
        "SPMD pod: {}x{} cores, per-core {}x{}, global {}x{}, T = 0.95·Tc",
        cfg.torus.nx,
        cfg.torus.ny,
        cfg.per_core_h,
        cfg.per_core_w,
        cfg.global_h(),
        cfg.global_w()
    );
    let t0 = std::time::Instant::now();
    let pod = run_pod::<f32>(&cfg, sweeps).expect("pod run failed");
    let dt = t0.elapsed().as_secs_f64();
    let n = cfg.sites() as f64;
    println!(
        "{sweeps} sweeps in {:.2} s ({:.1} Msite-updates/s across {} threads)",
        dt,
        n * sweeps as f64 / dt / 1e6,
        cfg.torus.cores()
    );
    println!("|m| trajectory (every 10 sweeps):");
    for (i, m) in pod.magnetization_sums.iter().enumerate().step_by(10) {
        let frac = (m / n).abs();
        println!("  sweep {i:>3}: |m| = {frac:.3}  {}", "▇".repeat((frac * 40.0) as usize));
    }

    // What the same program shape does on modeled TPU v3 hardware.
    println!("\nmodeled on TPU v3 (paper's substrate):");
    let p = TpuV3Params::v3();
    for (label, h, w, cores, variant) in [
        (
            "4 cores, per-core [896,448]x128, compact",
            896 * 128,
            448 * 128,
            4usize,
            Variant::Compact,
        ),
        ("512 cores, per-core [896,448]x128, compact", 896 * 128, 448 * 128, 512, Variant::Compact),
        ("2048 cores, per-core [896,448]x128, conv", 896 * 128, 448 * 128, 2048, Variant::Conv),
    ] {
        let mcfg = StepConfig {
            per_core_h: h,
            per_core_w: w,
            dtype_bytes: 2,
            variant,
            mode: ExecutionMode::Distributed { cores },
        };
        let bd = step_time(&p, &mcfg);
        println!(
            "  {label}: step {:.1} ms, {:.0} flips/ns, cp share {:.2}%",
            bd.total() * 1e3,
            throughput_flips_per_ns(&p, &mcfg),
            bd.t_cp / bd.total() * 100.0
        );
    }
}
