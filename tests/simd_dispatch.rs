//! SIMD dispatch and sweep-pool integration.
//!
//! Pins the two cross-crate guarantees of the runtime-dispatched sweep:
//! the multi-spin steady state allocates zero bytes **with the parallel
//! path enabled** (the persistent pool replaced rayon's per-scope task
//! machinery precisely for this), and the dispatched ISA tier is one
//! consistent value everywhere it surfaces.

use tpu_ising_core::multispin::MultiSpinIsing;
use tpu_ising_core::sweep_pool;
use tpu_ising_obs as obs;
use tpu_ising_rng::{simd, tree_feed};

// The zero-allocation guarantee is measured, not assumed.
#[global_allocator]
static ALLOC: obs::alloc::CountingAllocator = obs::alloc::CountingAllocator;

/// Size the global pool before its first use so the parallel dispatch
/// path is exercised even on single-CPU runners (the pool reads the env
/// once, on the first parallel half-sweep).
fn force_parallel_pool() -> &'static sweep_pool::SweepPool {
    std::env::set_var(sweep_pool::WORKERS_ENV, "4");
    sweep_pool::pool()
}

#[test]
fn multispin_steady_state_allocates_zero_bytes_with_parallel_path() {
    let pool = force_parallel_pool();
    assert!(pool.helpers() >= 1, "pool must have helper threads for this test");
    let mut sim = MultiSpinIsing::new(64, 64, 0.6, 99);
    sim.set_tile_rows(Some(4)); // plenty of tiles per half-sweep
    for _ in 0..5 {
        sim.sweep(); // warm-up: pool spawn, lazy statics
    }
    // Min-delta over many windows: concurrent tests may allocate, but at
    // least one window must be clean if the sweep itself does not
    // allocate (same idiom as the perfbase steady-state gate).
    let mut min_delta = u64::MAX;
    for _ in 0..20 {
        let a0 = obs::alloc::allocated_bytes();
        for _ in 0..3 {
            sim.sweep();
        }
        min_delta = min_delta.min(obs::alloc::allocated_bytes() - a0);
    }
    assert_eq!(min_delta, 0, "parallel multispin sweep allocated {min_delta} B steady-state");
}

#[test]
fn pool_helpers_really_participate() {
    let pool = force_parallel_pool();
    let ids = std::sync::Mutex::new(std::collections::HashSet::new());
    // enough tiles, slow enough, that helpers reliably claim some
    for _ in 0..50 {
        pool.run(64, &|_t| {
            std::thread::sleep(std::time::Duration::from_micros(50));
            ids.lock().unwrap().insert(std::thread::current().id());
        });
    }
    let seen = ids.lock().unwrap().len();
    assert!(seen >= 2, "tiles only ever ran on {seen} thread(s)");
}

#[test]
fn dispatched_isa_is_one_consistent_value() {
    let isa = simd::isa();
    assert_eq!(tree_feed().isa, isa, "tree kernels disagree with the dispatched tier");
    assert!(isa <= simd::native_isa(), "dispatch exceeded hardware capability");
    assert!(isa.lanes() >= 1);
    // the provenance strings benches stamp into JSON rows are non-empty
    assert!(!isa.name().is_empty());
    assert!(!simd::cpu_features().summary().is_empty());
}
