//! Flight-recorder integration: a faulted pod run plus a vault fallback
//! must merge into one totally ordered postmortem timeline (kill → retry
//! escalation → restart → vault fallback), a seeded 2×2 chaos kill must
//! leave at least one event per restart generation, the merged-timeline
//! renderers are golden-tested, and steady-state recording must not touch
//! the heap.

use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use tpu_ising_core::chaos::{
    apply_corruption, run_chaos_pod, ChaosPlan, SessionFaults, VaultCorruption,
};
use tpu_ising_core::distributed::{run_pod_resilient, PodConfig, PodRng, ResilienceOpts};
use tpu_ising_core::{KernelBackend, Vault};
use tpu_ising_device::mesh::{FaultPlan, RetryPolicy, Torus};
use tpu_ising_obs as obs;
use tpu_ising_obs::postmortem::{
    chrome_timeline_json, merge_dir, parse_event_line, render_table, TimelineEvent,
};
use tpu_ising_obs::recorder::{Event, EventKind, HOST_CORE};

// The zero-allocation guarantee is measured, not assumed.
#[global_allocator]
static ALLOC: obs::alloc::CountingAllocator = obs::alloc::CountingAllocator;

/// The recorder is process-global; tests that arm or reset it serialize
/// on this gate (same idiom as the recorder's own unit tests).
fn exclusive() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("tpu-ising-flightrec-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create tmpdir");
    dir
}

fn pod_2x2() -> PodConfig {
    PodConfig {
        torus: Torus::new(2, 2),
        per_core_h: 8,
        per_core_w: 8,
        tile: 2,
        beta: 0.4,
        seed: 99,
        rng: PodRng::SiteKeyed,
        backend: KernelBackend::Band,
    }
}

/// First position of `kind` in a seq-ordered timeline.
fn pos(events: &[TimelineEvent], kind: &str) -> usize {
    events
        .iter()
        .position(|e| e.kind == kind)
        .unwrap_or_else(|| panic!("no {kind} event in merged timeline:\n{}", render_table(events)))
}

/// The acceptance drill: a killed collective escalates through the retry
/// tier to a pod restart, then a corrupted vault generation is
/// quarantined and an older one carries the restore — and the merged
/// postmortem timeline shows those stages **in order**.
#[test]
fn fault_drill_merges_into_ordered_timeline() {
    let _x = exclusive();
    let dir = tmpdir("drill");
    obs::recorder::reset();
    obs::recorder::enable_recording();
    obs::recorder::set_run_id(77);
    obs::recorder::set_postmortem_dir(Some(dir.clone()));

    // Tier 1 + tier 2: kill core 1 at collective 3 and drop the 3→2
    // packet of the same collective. The kill alone is not enough to
    // exercise the retry tier deterministically — a peer that *sends* to
    // the dead core fails fast (PeerGone) before any receive window
    // expires — but core 2, whose expected packet was dropped by a peer
    // that stays alive, is pinned in its receive window and must walk
    // retry_extended → retry_exhausted before the driver can restart.
    let opts = ResilienceOpts {
        checkpoint_every: 2,
        max_restarts: 2,
        recv_timeout: Duration::from_millis(300),
        faults: FaultPlan::new().kill(1, 3).drop_packet(3, 2, 3),
        retry: RetryPolicy { max_retries: 1, backoff: Duration::from_millis(10) },
        ..ResilienceOpts::default()
    };
    let run = run_pod_resilient::<f32>(&pod_2x2(), 4, &opts, None).expect("resilient run");
    assert_eq!(run.restarts, 1, "the kill must cost exactly one restart");

    // Tier 3: a durable vault whose newest generation is corrupt — the
    // load quarantines it and falls back to the older generation.
    let vault = Vault::new(dir.join("vault"), "drill", 3).expect("vault");
    vault.save("pod", 2, "{\"m\":1}").expect("save sweep-2 generation");
    vault.save("pod", 4, "{\"m\":2}").expect("save sweep-4 generation");
    apply_corruption(&vault.generation_path(4), VaultCorruption::BitFlip { permille: 900, bit: 3 })
        .expect("corrupt newest generation");
    let loaded = vault.load_latest("pod").expect("fallback load");
    assert_eq!(loaded.sweep, 2, "restore must fall back to the older generation");
    assert_eq!(loaded.quarantined.len(), 1);

    assert!(obs::recorder::dump_postmortem("drill complete").is_some());
    let (events, bundles) = merge_dir(&dir).expect("merge bundles");
    obs::recorder::set_postmortem_dir(None);
    obs::recorder::disable_recording();
    obs::recorder::reset();
    let _ = std::fs::remove_dir_all(&dir);

    // The driver dumped a gen-0 bundle at the mesh fault, plus our final
    // dump; the merge de-duplicates their overlap on seq.
    assert!(bundles.len() >= 2, "expected the mesh-fault bundle and the final dump");
    let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
    assert!(seqs.windows(2).all(|w| w[0] < w[1]), "merged timeline must be strictly seq-ordered");
    assert!(events.iter().all(|e| e.run_id == 77));
    for g in [0u32, 1] {
        assert!(events.iter().any(|e| e.gen == g), "no events recorded in generation {g}");
    }

    // The ordered story the recorder exists to tell.
    let kill = pos(&events, "kill_injected");
    let dropped = pos(&events, "drop_injected");
    let extended = pos(&events, "retry_extended");
    let exhausted = pos(&events, "retry_exhausted");
    let fault = pos(&events, "mesh_fault");
    let restart = pos(&events, "pod_restart");
    let write = pos(&events, "vault_write");
    let quarantine = pos(&events, "vault_quarantine");
    let fallback = pos(&events, "vault_fallback");
    assert!(
        kill < extended && extended < exhausted && exhausted < fault && fault < restart,
        "kill → retry escalation → restart out of order: \
         kill={kill} extended={extended} exhausted={exhausted} fault={fault} restart={restart}"
    );
    assert!(
        restart < write && write < quarantine && quarantine < fallback,
        "restart → vault fallback out of order: \
         restart={restart} write={write} quarantine={quarantine} fallback={fallback}"
    );
    assert_eq!(events[kill].field("collective"), Some(3));
    assert!(dropped < extended, "the drop precedes the receive window it starves");
    assert_eq!(events[fallback].field("vault_sweep"), Some(2));
    assert_eq!(events[restart].gen, 1, "the restart event belongs to the new generation");
}

/// A seeded 2×2 chaos drill (two scheduled kills, then the fault-free
/// session) must leave postmortem bundles whose merge carries at least
/// one event per restart generation, with each session's kill preceding
/// its mesh fault.
#[test]
fn chaos_kill_leaves_postmortem_per_generation() {
    let _x = exclusive();
    let dir = tmpdir("chaos");
    obs::recorder::reset();
    obs::recorder::enable_recording();
    obs::recorder::set_run_id(31);
    obs::recorder::set_postmortem_dir(Some(dir.clone()));

    // Hand-pinned schedule (the seed only labels it): kills land after
    // the sweep-2 checkpoint so a vault generation exists to corrupt.
    let plan = ChaosPlan {
        seed: 0xC0FFEE,
        sessions: vec![
            SessionFaults {
                kills: vec![(1, 20)],
                corrupt: Some(VaultCorruption::BitFlip { permille: 500, bit: 2 }),
                ..SessionFaults::none()
            },
            SessionFaults { kills: vec![(2, 12)], ..SessionFaults::none() },
        ],
    };
    let report =
        run_chaos_pod(&pod_2x2(), 6, 2, &plan, &dir.join("vault"), 3).expect("chaos drill");
    assert_eq!(report.crashes, 2, "both scheduled kills must land: {report:?}");
    assert_eq!(report.final_sweep, 6);
    assert!(report.bit_exact, "chaos run diverged from the reference: {report:?}");

    assert!(obs::recorder::dump_postmortem("chaos complete").is_some());
    let (events, bundles) = merge_dir(&dir).expect("merge bundles");
    obs::recorder::set_postmortem_dir(None);
    obs::recorder::disable_recording();
    obs::recorder::reset();
    let _ = std::fs::remove_dir_all(&dir);

    // One bundle per crashed session plus the final dump.
    assert!(bundles.len() >= 3, "expected >= 3 bundles, got {}", bundles.len());

    // Generations: 0 = reference + session 0, 1 = session 1, 2 = the
    // fault-free final session. Each must have recorded something.
    let max_gen = events.iter().map(|e| e.gen).max().expect("events");
    assert_eq!(max_gen, 2);
    for g in 0..=max_gen {
        assert!(events.iter().any(|e| e.gen == g), "no events recorded in generation {g}");
    }

    // One session_start per generation, on the host track, in order.
    let starts: Vec<&TimelineEvent> = events.iter().filter(|e| e.kind == "session_start").collect();
    assert_eq!(starts.len(), 3);
    for (i, s) in starts.iter().enumerate() {
        assert!(s.is_host());
        assert_eq!(s.field("session"), Some(i as u64));
        assert_eq!(s.gen, i as u32);
    }

    // Within each crashed generation the kill precedes the mesh fault.
    for g in [0u32, 1] {
        let in_gen: Vec<&TimelineEvent> = events.iter().filter(|e| e.gen == g).collect();
        let kill = in_gen
            .iter()
            .position(|e| e.kind == "kill_injected")
            .unwrap_or_else(|| panic!("no kill_injected in generation {g}"));
        let fault = in_gen
            .iter()
            .position(|e| e.kind == "mesh_fault")
            .unwrap_or_else(|| panic!("no mesh_fault in generation {g}"));
        assert!(kill < fault, "generation {g}: kill at {kill} not before mesh_fault at {fault}");
    }

    // Vault-side events need a real serializer (checkpoint payloads go
    // through serde); when they are present the corruption injection must
    // precede the quarantine it causes.
    if events.iter().any(|e| e.kind == "vault_write") {
        let injected = pos(&events, "chaos_injected");
        let quarantine = pos(&events, "vault_quarantine");
        assert!(injected < quarantine, "corruption injected={injected} quarantine={quarantine}");
        assert_eq!(events[injected].field("session"), Some(0));
    }
}

/// A canonical merged drill timeline, built from fixed JSONL lines so the
/// renderer goldens are deterministic.
fn canonical_timeline() -> Vec<TimelineEvent> {
    let line = |seq: u64, gen: u32, core: u32, sweep: u64, kind: EventKind| {
        Event { run_id: 7, core, gen, sweep, seq, t_us: seq as f64 * 100.0, kind }.to_json_line()
    };
    [
        line(0, 0, 0, 1, EventKind::SweepBoundary),
        line(1, 0, 0, 1, EventKind::CollectiveSend { collective: 2, peer: 1 }),
        line(2, 0, 1, 1, EventKind::KillInjected { collective: 3 }),
        line(3, 0, 0, 1, EventKind::RetryExtended { collective: 4, attempt: 1 }),
        line(4, 0, 0, 1, EventKind::RetryExhausted { collective: 4 }),
        line(5, 0, HOST_CORE, 0, EventKind::MeshFault { root: 1 }),
        line(6, 1, HOST_CORE, 0, EventKind::PodRestart { restarts: 1 }),
        line(7, 1, 0, 2, EventKind::VaultWrite { sweep: 2, bytes: 321 }),
        line(8, 1, HOST_CORE, 0, EventKind::VaultQuarantine),
        line(9, 1, HOST_CORE, 0, EventKind::VaultFallback { sweep: 2 }),
    ]
    .iter()
    .map(|l| parse_event_line(l).expect("canonical line parses"))
    .collect()
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden/postmortem_timeline.txt")
}

#[test]
fn merged_timeline_table_matches_golden_file() {
    let table = render_table(&canonical_timeline());
    let path = golden_path();
    if std::env::var_os("ISING_BLESS_GOLDEN").is_some() {
        std::fs::write(&path, &table).expect("bless golden");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    assert_eq!(
        table, golden,
        "postmortem table drifted from tests/golden/postmortem_timeline.txt \
         (rerun with ISING_BLESS_GOLDEN=1 to re-bless an intended change)"
    );
}

#[test]
fn merged_timeline_chrome_export_is_structurally_sound() {
    let events = canonical_timeline();
    let json = chrome_timeline_json(&events, "tpu-ising postmortem");
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.contains("\"displayTimeUnit\":\"ms\""));
    // tracks: (gen0, core0), (gen0, core1), (gen0, host), (gen1, core0),
    // (gen1, host) — one per core per generation
    assert_eq!(json.matches("\"thread_name\"").count(), 5);
    assert!(json.contains("\"name\":\"core-1 gen0\""));
    assert!(json.contains("\"name\":\"host gen1\""));
    assert_eq!(json.matches("\"ph\":\"i\"").count(), events.len());
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
}

/// The acceptance bar for the recorder itself: once the rings exist,
/// recording a sweep's worth of events costs **zero** heap allocation.
#[test]
fn recorder_steady_state_allocates_zero_bytes() {
    let _x = exclusive();
    obs::recorder::reset();
    obs::recorder::set_ring_capacity(512);
    obs::recorder::enable_recording();
    obs::recorder::register_core(0);
    // Warm past capacity so every later push overwrites a ring slot.
    for i in 0..600u64 {
        obs::recorder::set_sweep(i);
        obs::record(EventKind::CollectiveSend { collective: i, peer: 1 });
    }
    // Min-delta over many sweeps: concurrent tests may allocate, but at
    // least one iteration runs clean — and the recorder itself must never
    // allocate (same idiom as the perfbase steady-state gate).
    let mut min_delta = u64::MAX;
    for s in 0..4096u64 {
        let a0 = obs::alloc::allocated_bytes();
        obs::recorder::set_sweep(s);
        obs::record(EventKind::SweepBoundary);
        obs::record(EventKind::CollectiveSend { collective: s, peer: 1 });
        obs::record(EventKind::CollectiveRecv { collective: s, peer: 1 });
        obs::record(EventKind::CheckpointRecorded);
        min_delta = min_delta.min(obs::alloc::allocated_bytes() - a0);
    }
    obs::recorder::disable_recording();
    obs::recorder::set_ring_capacity(obs::recorder::DEFAULT_RING_CAPACITY);
    obs::recorder::reset();
    assert_eq!(min_delta, 0, "recorder allocated {min_delta} B on the steady-state record path");
}
