//! The calibrated device model must reproduce every performance table of
//! the paper within tight tolerances. These tests walk the same rows the
//! benchmark binaries print, so a calibration regression fails CI rather
//! than silently skewing EXPERIMENTS.md.

use tpu_ising_device::cost::{
    step_time, throughput_flips_per_ns, ExecutionMode, StepConfig, Variant,
};
use tpu_ising_device::energy::energy_nj_per_flip;
use tpu_ising_device::params::TpuV3Params;
use tpu_ising_device::roofline::roofline;

fn pct(a: f64, b: f64) -> f64 {
    ((a / b) - 1.0).abs() * 100.0
}

#[test]
fn table1_single_core_rows_within_1pct() {
    let p = TpuV3Params::v3();
    for (k, paper_f) in [
        (20usize, 8.1920),
        (40, 9.3623),
        (80, 12.3362),
        (160, 12.8266),
        (320, 12.9056),
        (640, 12.8783),
    ] {
        let cfg = StepConfig {
            per_core_h: k * 128,
            per_core_w: k * 128,
            dtype_bytes: 2,
            variant: Variant::Compact,
            mode: ExecutionMode::SingleCore,
        };
        let f = throughput_flips_per_ns(&p, &cfg);
        assert!(pct(f, paper_f) < 1.0, "k={k}: {f} vs {paper_f}");
        let e = energy_nj_per_flip(p.power_w, f);
        assert!(pct(e, 100.0 / paper_f) < 1.0, "k={k} energy");
    }
}

#[test]
fn table2_weak_scaling_rows_within_1pct() {
    let p = TpuV3Params::v3();
    for (cores, paper_ms, paper_f) in [
        (2usize, 574.7, 22.8873),
        (8, 574.9, 91.5174),
        (32, 575.0, 366.0059),
        (128, 575.2, 1463.5146),
        (512, 575.3, 5853.0408),
    ] {
        let cfg = StepConfig {
            per_core_h: 896 * 128,
            per_core_w: 448 * 128,
            dtype_bytes: 2,
            variant: Variant::Compact,
            mode: ExecutionMode::Distributed { cores },
        };
        let bd = step_time(&p, &cfg);
        let f = throughput_flips_per_ns(&p, &cfg);
        assert!(pct(bd.total() * 1e3, paper_ms) < 1.0, "{cores} cores step");
        assert!(pct(f, paper_f) < 1.0, "{cores} cores throughput");
    }
}

#[test]
fn table3_breakdown_within_one_point() {
    let p = TpuV3Params::v3();
    let cfg = StepConfig {
        per_core_h: 896 * 128,
        per_core_w: 448 * 128,
        dtype_bytes: 2,
        variant: Variant::Compact,
        mode: ExecutionMode::Distributed { cores: 512 },
    };
    let (mxu, vpu, fmt, cp) = step_time(&p, &cfg).percentages();
    assert!((mxu - 59.4).abs() < 1.0, "mxu {mxu}");
    assert!((vpu - 12.0).abs() < 1.0, "vpu {vpu}");
    assert!((fmt - 28.1).abs() < 1.0, "fmt {fmt}");
    assert!(cp < 0.3, "cp {cp}");
}

#[test]
fn table4_cells_within_tolerance() {
    let p = TpuV3Params::v3();
    for (h, w, cores, paper_step, paper_cp) in [
        (896usize, 448usize, 32usize, 575.0, 0.37),
        (896, 448, 512, 575.3, 0.65),
        (448, 224, 128, 255.11, 0.41),
        (224, 112, 32, 64.61, 0.18),
        (224, 112, 512, 64.92, 0.58),
    ] {
        let cfg = StepConfig {
            per_core_h: h * 128,
            per_core_w: w * 128,
            dtype_bytes: 2,
            variant: Variant::Compact,
            mode: ExecutionMode::Distributed { cores },
        };
        let bd = step_time(&p, &cfg);
        assert!(pct(bd.total() * 1e3, paper_step) < 2.0, "[{h},{w}]x{cores} step");
        // cp times are sub-millisecond measurements; 50 % relative or
        // 0.15 ms absolute, whichever is looser.
        let cp_ms = bd.t_cp * 1e3;
        assert!(
            (cp_ms - paper_cp).abs() < (0.15f64).max(paper_cp * 0.5),
            "[{h},{w}]x{cores} cp {cp_ms} vs {paper_cp}"
        );
    }
}

#[test]
fn table5_roofline_rows() {
    let p = TpuV3Params::v3();
    for (cores, paper_roof, paper_peak) in [(2usize, 76.68, 9.31), (512, 76.43, 9.26)] {
        let cfg = StepConfig {
            per_core_h: 896 * 128,
            per_core_w: 448 * 128,
            dtype_bytes: 2,
            variant: Variant::Compact,
            mode: ExecutionMode::Distributed { cores },
        };
        let r = roofline(&p, &cfg);
        assert!((r.pct_of_roofline() - paper_roof).abs() < 1.5, "{cores} roofline");
        assert!((r.pct_of_peak() - paper_peak).abs() < 0.5, "{cores} peak");
        assert!(r.memory_bound);
    }
}

#[test]
fn table6_conv_weak_scaling_sampled_rows_within_4pct() {
    let p = TpuV3Params::v3();
    for (h, w, cores, paper_f) in [
        (224usize, 224usize, 4usize, 80.64),
        (224, 224, 2025, 40456.29),
        (448, 448, 256, 5120.83),
        (896, 448, 8, 158.57),
        (896, 448, 2048, 40403.46),
    ] {
        let cfg = StepConfig {
            per_core_h: h * 128,
            per_core_w: w * 128,
            dtype_bytes: 2,
            variant: Variant::Conv,
            mode: ExecutionMode::Distributed { cores },
        };
        let f = throughput_flips_per_ns(&p, &cfg);
        assert!(pct(f, paper_f) < 4.0, "[{h},{w}]x{cores}: {f} vs {paper_f}");
    }
}

#[test]
fn table7_strong_scaling_within_10pct_and_knee_present() {
    let p = TpuV3Params::v3();
    let total = 1792 * 128;
    for ((tx, ty), paper_f) in
        [((2usize, 4usize), 159.37), ((8, 8), 1272.94), ((16, 32), 8585.73), ((32, 64), 18396.28)]
    {
        let cfg = StepConfig {
            per_core_h: total / tx,
            per_core_w: total / ty,
            dtype_bytes: 2,
            variant: Variant::Conv,
            mode: ExecutionMode::Distributed { cores: tx * ty },
        };
        let f = throughput_flips_per_ns(&p, &cfg);
        assert!(pct(f, paper_f) < 10.0, "[{tx},{ty}]: {f} vs {paper_f}");
    }
}

#[test]
fn headline_claims_hold_in_the_model() {
    // 60 % over the best published GPU benchmark, ~10 % over V100.
    let p = TpuV3Params::v3();
    let cfg = StepConfig {
        per_core_h: 320 * 128,
        per_core_w: 320 * 128,
        dtype_bytes: 2,
        variant: Variant::Compact,
        mode: ExecutionMode::SingleCore,
    };
    let tpu = throughput_flips_per_ns(&p, &cfg);
    assert!(tpu / tpu_ising_baseline::published::GPU_PREIS_2009_FLIPS_PER_NS > 1.6);
    let v100_gain = tpu / tpu_ising_baseline::published::V100_FLIPS_PER_NS;
    assert!((1.05..1.20).contains(&v100_gain), "{v100_gain}");
    // TPU is also the more energy-efficient device in the model.
    let tpu_energy = energy_nj_per_flip(p.power_w, tpu);
    let v100_energy = energy_nj_per_flip(
        tpu_ising_baseline::published::V100_POWER_W,
        tpu_ising_baseline::published::V100_FLIPS_PER_NS,
    );
    assert!(tpu_energy < v100_energy / 2.0);
}
