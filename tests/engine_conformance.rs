//! Engine conformance suite: every registered algorithm must behave
//! identically whether it is driven through the type-erased [`Engine`]
//! trait (the path every deployment driver now uses) or constructed
//! concretely the pre-trait way — and checkpoint/restore round-trips must
//! continue the chain bit-exactly.

use tpu_ising_suite::ising::engine::{
    build_engine, restore_engine, Algo, Dtype, Engine, EngineSpec,
};
use tpu_ising_suite::ising::{
    cold_plane, Color, CompactIsing, ConvIsing, KernelBackend, MultiSpinIsing, NaiveIsing,
    Randomness, Sweeper, WolffIsing,
};

const L: usize = 16;
const BETA: f64 = 0.4;
const SEED: u64 = 1234;

fn spec(algo: Algo, dtype: Dtype) -> EngineSpec {
    EngineSpec {
        algo,
        dtype,
        height: L,
        width: L,
        tile: 4,
        beta: BETA,
        seed: SEED,
        cold: true,
        backend: KernelBackend::Band,
    }
}

/// Advance `n` sweeps and return the (magnetization, energy) trace.
fn trace(engine: &mut dyn Engine, n: usize) -> Vec<(f64, f64)> {
    (0..n)
        .map(|_| {
            engine.sweep();
            let o = engine.observe();
            (o.magnetization, o.energy)
        })
        .collect()
}

/// The trait-built engine must reproduce the concrete pre-trait
/// construction bit-for-bit, for every registered algorithm.
#[test]
fn trait_built_engines_match_concrete_construction() {
    let n = 8;
    for algo in Algo::ALL {
        let mut built = build_engine(&spec(algo, Dtype::F32)).expect("build_engine");
        let built_trace = trace(built.as_mut(), n);

        let init = cold_plane::<f32>(L, L);
        let rng = Randomness::bulk(SEED);
        let concrete: Vec<(f64, f64)> = match algo {
            Algo::Compact => {
                let mut s =
                    CompactIsing::from_plane(&init, 4, BETA, rng).with_backend(KernelBackend::Band);
                (0..n)
                    .map(|_| {
                        s.sweep();
                        (s.magnetization_sum(), s.energy_sum())
                    })
                    .collect()
            }
            Algo::Naive => {
                let mut s =
                    NaiveIsing::from_plane(&init, 4, BETA, rng).with_backend(KernelBackend::Band);
                (0..n)
                    .map(|_| {
                        s.sweep();
                        (s.magnetization_sum(), s.energy_sum())
                    })
                    .collect()
            }
            Algo::Conv => {
                let mut s = ConvIsing::new(init, BETA, rng).with_backend(KernelBackend::Band);
                (0..n)
                    .map(|_| {
                        s.sweep();
                        (s.magnetization_sum(), s.energy_sum())
                    })
                    .collect()
            }
            Algo::Wolff => {
                let mut s = WolffIsing::new(init, BETA, rng);
                (0..n)
                    .map(|_| {
                        s.sweep();
                        (s.magnetization_sum(), s.energy_sum())
                    })
                    .collect()
            }
            Algo::Multispin => {
                let mut s = MultiSpinIsing::new(L, L, BETA, SEED);
                let n_rep = s.replica_magnetizations().len();
                (0..n)
                    .map(|_| {
                        s.sweep();
                        // The trait's observe() reports the replica mean.
                        let m = s.replica_magnetizations().iter().sum::<f64>() / n_rep as f64;
                        let e = (0..n_rep).map(|k| s.replica_energy(k)).sum::<f64>() / n_rep as f64;
                        (m, e)
                    })
                    .collect()
            }
        };
        assert_eq!(
            built_trace, concrete,
            "{algo}: trait-built trace diverged from concrete construction"
        );
    }
}

/// Checkpoint at mid-chain, restore, and run both branches forward: the
/// restored engine must continue bit-exactly. Applies to every engine
/// whose capabilities claim checkpoint support.
#[test]
fn checkpoint_restore_round_trip_is_bit_exact() {
    for algo in Algo::ALL {
        let caps = algo.caps();
        let mut original = build_engine(&spec(algo, Dtype::F32)).expect("build_engine");
        for _ in 0..5 {
            original.sweep();
        }
        let Some(ck) = original.checkpoint() else {
            assert!(!caps.checkpoint, "{algo}: caps claim checkpoint but none was produced");
            continue;
        };
        assert!(caps.checkpoint, "{algo}: produced a checkpoint but caps deny it");
        assert_eq!(ck.algo(), algo);
        assert_eq!(ck.sweep_index(), original.sweep_index());
        let mut restored = restore_engine(&ck).expect("restore_engine");
        assert_eq!(restored.sweep_index(), original.sweep_index());
        assert_eq!(
            trace(original.as_mut(), 6),
            trace(restored.as_mut(), 6),
            "{algo}: restored engine diverged from the original"
        );
    }
}

/// Two half-steps must equal one sweep, for every engine: this is the
/// contract the SPMD drivers rely on when they interleave halo exchange
/// between colors.
#[test]
fn two_half_steps_equal_one_sweep() {
    for algo in Algo::ALL {
        let mut stepped = build_engine(&spec(algo, Dtype::F32)).expect("build_engine");
        let mut swept = build_engine(&spec(algo, Dtype::F32)).expect("build_engine");
        for _ in 0..4 {
            stepped.step(Color::Black);
            stepped.step(Color::White);
            swept.sweep();
        }
        assert_eq!(stepped.sweep_index(), swept.sweep_index(), "{algo}: sweep counter drift");
        let a = stepped.observe();
        let b = swept.observe();
        assert_eq!((a.magnetization, a.energy), (b.magnetization, b.energy), "{algo}");
    }
}

/// The descriptor and capability surface every driver keys on.
#[test]
fn descriptors_and_caps_are_consistent() {
    for algo in Algo::ALL {
        let engine = build_engine(&spec(algo, Dtype::F32)).expect("build_engine");
        let desc = engine.descriptor();
        assert_eq!(desc.algo, algo);
        assert_eq!(engine.caps(), algo.caps());
        assert_eq!(engine.replica_observations().len(), algo.caps().replicas);
        assert_eq!(engine.replica_magnetization_sums().len(), algo.caps().replicas);
        // Round-trip the registry spelling.
        assert_eq!(algo.name().parse::<Algo>().unwrap(), algo);
    }
    assert!("gpu".parse::<Algo>().is_err(), "gpu baseline must stay outside the registry");
    // Packed lattices cannot be requested for scalar algorithms.
    assert!(build_engine(&spec(Algo::Compact, Dtype::Packed)).is_err());
}

/// bf16 engines build and advance through the same trait path.
#[test]
fn bf16_engines_build_and_run() {
    for algo in [Algo::Naive, Algo::Compact, Algo::Conv] {
        let mut engine = build_engine(&spec(algo, Dtype::Bf16)).expect("bf16 build");
        assert_eq!(engine.descriptor().dtype, Dtype::Bf16);
        engine.sweep();
        assert_eq!(engine.sweep_index(), 1);
    }
}
