//! Quantitative physics validation against exact 2-D Ising results.
//!
//! These are the integration-level versions of the paper's Fig. 4
//! correctness claims: magnetization against Onsager/Yang's exact curve,
//! internal energy against Onsager's exact solution, disorder above Tc,
//! Binder-cumulant limits, and f32/bf16 statistical agreement.

use tpu_ising_bf16::Bf16;
use tpu_ising_core::{
    cold_plane, onsager, random_plane, run_chain, CompactIsing, MultiSpinIsing, Randomness,
    REPLICAS, T_CRITICAL,
};

#[test]
fn magnetization_matches_onsager_below_tc() {
    // T = 0.8·Tc on a 48² lattice: finite-size corrections are tiny this
    // far below Tc.
    let t = 0.8 * T_CRITICAL;
    let mut sim =
        CompactIsing::from_plane(&cold_plane::<f32>(48, 48), 8, 1.0 / t, Randomness::bulk(3));
    let stats = run_chain(&mut sim, 300, 1500);
    let exact = onsager::magnetization(t);
    assert!(
        (stats.mean_abs_m - exact).abs() < 0.01,
        "⟨|m|⟩ = {} vs exact {exact}",
        stats.mean_abs_m
    );
    // deep in the ordered phase the Binder cumulant sits at 2/3
    assert!((stats.binder - 2.0 / 3.0).abs() < 0.01, "U4 = {}", stats.binder);
}

#[test]
fn energy_matches_onsager_on_both_sides_of_tc() {
    for (tt, tol) in [(0.7, 0.01), (1.4, 0.02)] {
        let t = tt * T_CRITICAL;
        let init =
            if tt < 1.0 { cold_plane::<f32>(48, 48) } else { random_plane::<f32>(9, 48, 48) };
        let mut sim = CompactIsing::from_plane(&init, 8, 1.0 / t, Randomness::bulk(4));
        let stats = run_chain(&mut sim, 300, 1200);
        let exact = onsager::energy_per_site(t);
        assert!(
            (stats.mean_energy - exact).abs() < tol + 3.0 * stats.err_energy,
            "T/Tc={tt}: ⟨E⟩/N = {} vs exact {exact} (err {})",
            stats.mean_energy,
            stats.err_energy
        );
    }
}

#[test]
fn disorder_above_tc() {
    let t = 1.5 * T_CRITICAL;
    let mut sim =
        CompactIsing::from_plane(&random_plane::<f32>(17, 64, 64), 8, 1.0 / t, Randomness::bulk(5));
    let stats = run_chain(&mut sim, 200, 800);
    // |m| ~ O(1/L) in the disordered phase
    assert!(stats.mean_abs_m < 0.1, "⟨|m|⟩ = {}", stats.mean_abs_m);
    // U4 near 0 for Gaussian m
    assert!(stats.binder.abs() < 0.25, "U4 = {}", stats.binder);
}

#[test]
fn bf16_reproduces_f32_statistics() {
    // The paper's central precision claim, as a statistical test: same
    // protocol at both precisions, means must agree within combined error.
    for tt in [0.85, 1.2] {
        let t = tt * T_CRITICAL;
        let init_f = if tt < 1.0 { cold_plane::<f32>(32, 32) } else { random_plane(21, 32, 32) };
        let init_b = if tt < 1.0 { cold_plane::<Bf16>(32, 32) } else { random_plane(21, 32, 32) };
        let mut f = CompactIsing::from_plane(&init_f, 8, 1.0 / t, Randomness::bulk(31));
        let mut b = CompactIsing::from_plane(&init_b, 8, 1.0 / t, Randomness::bulk(31));
        let sf = run_chain(&mut f, 300, 1500);
        let sb = run_chain(&mut b, 300, 1500);
        let tol = 0.02 + 3.0 * (sf.err_abs_m + sb.err_abs_m);
        assert!(
            (sf.mean_abs_m - sb.mean_abs_m).abs() < tol,
            "T/Tc={tt}: f32 {} vs bf16 {} (tol {tol})",
            sf.mean_abs_m,
            sb.mean_abs_m
        );
    }
}

#[test]
fn wolff_and_checkerboard_agree_on_observables() {
    // Two unrelated update families targeting the same distribution: the
    // cluster sampler and the paper's checkerboard sampler must agree on
    // ⟨|m|⟩ within combined error bars — at Tc, where single-flip dynamics
    // are slowest and disagreement would show first.
    use tpu_ising_core::WolffIsing;
    let t = 0.95 * T_CRITICAL;
    let l = 24;
    let mut wolff = WolffIsing::new(cold_plane::<f32>(l, l), 1.0 / t, Randomness::bulk(41));
    let sw = run_chain(&mut wolff, 200, 1200);
    let mut checker =
        CompactIsing::from_plane(&cold_plane::<f32>(l, l), 4, 1.0 / t, Randomness::bulk(42));
    let sc = run_chain(&mut checker, 400, 3000);
    let tol = 0.02 + 3.0 * (sw.err_abs_m + sc.err_abs_m);
    assert!(
        (sw.mean_abs_m - sc.mean_abs_m).abs() < tol,
        "Wolff {} vs checkerboard {} (tol {tol})",
        sw.mean_abs_m,
        sc.mean_abs_m
    );
}

#[test]
fn multispin_replica0_matches_the_scalar_chain_near_tc() {
    // The bit-packed engine's replica 0 against the scalar compact chain
    // at β = 0.44 — a hair above Tc (β_c ≈ 0.4407), where single-flip
    // dynamics are slowest and any packed-update bias would show first.
    // Same agreement discipline as the Wolff/checkerboard cross-check:
    // means must coincide within 0.02 + 3σ of the combined chain errors.
    let beta = 0.44;
    let l = 32;
    let mut scalar =
        CompactIsing::from_plane(&random_plane::<f32>(11, l, l), 4, beta, Randomness::bulk(51));
    let ss = run_chain(&mut scalar, 400, 3000);

    let mut sim = MultiSpinIsing::new(l, l, beta, 13);
    for _ in 0..400 {
        sim.sweep(); // burn-in
    }
    let samples = 3000;
    let n = (l * l) as f64;
    let mut means = [0.0f64; REPLICAS];
    for _ in 0..samples {
        sim.sweep();
        for (acc, m) in means.iter_mut().zip(sim.replica_magnetizations()) {
            *acc += (m / n).abs();
        }
    }
    for acc in &mut means {
        *acc /= samples as f64;
    }
    // The 64 replicas are iid chains, so their spread estimates the
    // statistical error of any single chain's mean — including replica 0's.
    let grand = means.iter().sum::<f64>() / REPLICAS as f64;
    let var = means.iter().map(|m| (m - grand) * (m - grand)).sum::<f64>() / (REPLICAS - 1) as f64;
    let err_one_chain = var.sqrt();

    let tol = 0.02 + 3.0 * (err_one_chain + ss.err_abs_m);
    assert!(
        (means[0] - ss.mean_abs_m).abs() < tol,
        "replica 0 ⟨|m|⟩ = {:.4} vs scalar {:.4} (tol {tol:.4})",
        means[0],
        ss.mean_abs_m
    );
    // Pooling all 64 chains shrinks the multispin error by √64 — the
    // sharper version of the same statement.
    let tol_pooled = 0.02 + 3.0 * (err_one_chain / (REPLICAS as f64).sqrt() + ss.err_abs_m);
    assert!(
        (grand - ss.mean_abs_m).abs() < tol_pooled,
        "64-chain ⟨|m|⟩ = {grand:.4} vs scalar {:.4} (tol {tol_pooled:.4})",
        ss.mean_abs_m
    );
}

#[test]
fn susceptibility_peaks_near_tc() {
    // χ(T) must be larger near Tc than deep in either phase.
    let chi = |tt: f64, seed: u64| {
        let t = tt * T_CRITICAL;
        let l = 24;
        let init = if tt < 1.0 { cold_plane::<f32>(l, l) } else { random_plane(seed, l, l) };
        let mut sim = CompactIsing::from_plane(&init, 4, 1.0 / t, Randomness::bulk(seed));
        let stats = run_chain(&mut sim, 400, 2500);
        stats.susceptibility(1.0 / t, l * l)
    };
    let cold_side = chi(0.7, 1);
    let critical = chi(1.0, 2);
    let hot_side = chi(1.6, 3);
    assert!(
        critical > 4.0 * cold_side && critical > 4.0 * hot_side,
        "χ: cold {cold_side:.3}, critical {critical:.3}, hot {hot_side:.3}"
    );
}

#[test]
fn binder_curves_cross_near_tc() {
    // Coarse two-size Binder comparison: below Tc the bigger lattice has
    // the bigger U4; above Tc the ordering flips. (The crossing is Tc.)
    let u4 = |l: usize, tt: f64| {
        let t = tt * T_CRITICAL;
        let init = if tt < 1.0 { cold_plane::<f32>(l, l) } else { random_plane(5, l, l) };
        let tile = (l / 4).clamp(2, 8);
        let mut sim = CompactIsing::from_plane(&init, tile, 1.0 / t, Randomness::bulk(l as u64));
        run_chain(&mut sim, 400, 2000).binder
    };
    let below = (u4(16, 0.92), u4(32, 0.92));
    let above = (u4(16, 1.12), u4(32, 1.12));
    assert!(below.1 > below.0 - 0.01, "below Tc: {below:?}");
    assert!(above.1 < above.0 + 0.01, "above Tc: {above:?}");
}
