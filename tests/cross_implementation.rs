//! Cross-implementation equivalence: every update implementation in the
//! workspace — sequential reference, naive Algorithm 1, compact
//! Algorithm 2, conv variant, GPU-style baseline, the HLO-graph-built
//! step, and the distributed SPMD pod — makes **bit-identical** flip
//! decisions when driven by site-keyed randomness.

use tpu_ising_baseline::GpuStyleIsing;
use tpu_ising_bf16::Bf16;
use tpu_ising_core::distributed::{run_pod, PodConfig, PodRng};
use tpu_ising_core::{
    random_plane, CompactIsing, ConvIsing, NaiveIsing, Randomness, ReferenceIsing, Sweeper,
    T_CRITICAL,
};
use tpu_ising_device::mesh::Torus;

const SEED: u64 = 31337;
const L: usize = 16;

fn reference_after(sweeps: usize, beta: f64) -> tpu_ising_tensor::Plane<f32> {
    let init = random_plane::<f32>(SEED, L, L);
    let mut r = ReferenceIsing::new(init, beta, Randomness::site_keyed(SEED));
    for _ in 0..sweeps {
        r.sweep();
    }
    r.plane().clone()
}

#[test]
fn all_implementations_agree_bitwise_at_tc() {
    let beta = 1.0 / T_CRITICAL;
    let sweeps = 10;
    let expect = reference_after(sweeps, beta);
    let init = random_plane::<f32>(SEED, L, L);

    let mut naive = NaiveIsing::from_plane(&init, 4, beta, Randomness::site_keyed(SEED));
    let mut compact = CompactIsing::from_plane(&init, 4, beta, Randomness::site_keyed(SEED));
    let mut conv = ConvIsing::new(init.clone(), beta, Randomness::site_keyed(SEED));
    let mut gpu = GpuStyleIsing::new(init.clone(), beta, Randomness::site_keyed(SEED));
    for _ in 0..sweeps {
        naive.sweep();
        compact.sweep();
        conv.sweep();
        gpu.sweep();
    }
    assert_eq!(naive.to_plane(), expect, "naive != reference");
    assert_eq!(compact.to_plane(), expect, "compact != reference");
    assert_eq!(conv.plane(), &expect, "conv != reference");
    assert_eq!(gpu.plane(), &expect, "gpu-style != reference");
}

#[test]
fn distributed_pod_agrees_bitwise_with_reference() {
    let beta = 0.45;
    let sweeps = 8;
    let cfg = PodConfig {
        torus: Torus::new(2, 2),
        per_core_h: L / 2,
        per_core_w: L / 2,
        tile: 2,
        beta,
        seed: SEED,
        rng: PodRng::SiteKeyed,
        backend: tpu_ising_core::KernelBackend::Band,
    };
    let pod = run_pod::<f32>(&cfg, sweeps).expect("pod run failed");
    assert_eq!(pod.final_plane, reference_after(sweeps, beta));
}

#[test]
fn bf16_implementations_agree_with_each_other() {
    // At bf16 the acceptance grid is coarser than f32, so bf16 chains
    // diverge from f32 chains — but all bf16 implementations must still
    // agree bitwise among themselves.
    let beta = 0.5;
    let init = random_plane::<Bf16>(SEED, L, L);
    let mut compact = CompactIsing::from_plane(&init, 4, beta, Randomness::site_keyed(SEED));
    let mut conv = ConvIsing::new(init.clone(), beta, Randomness::site_keyed(SEED));
    let mut refer = ReferenceIsing::new(init, beta, Randomness::site_keyed(SEED));
    for _ in 0..8 {
        compact.sweep();
        conv.sweep();
        refer.sweep();
    }
    assert_eq!(&compact.to_plane(), refer.plane());
    assert_eq!(conv.plane(), refer.plane());
}

#[test]
fn trajectories_depend_on_every_seed_component() {
    let beta = 0.45;
    let base = reference_after(5, beta);
    // different RNG seed, same init
    let init = random_plane::<f32>(SEED, L, L);
    let mut other = ReferenceIsing::new(init, beta, Randomness::site_keyed(SEED + 1));
    for _ in 0..5 {
        other.sweep();
    }
    assert_ne!(other.plane(), &base, "seed change must change the trajectory");
}

#[test]
fn multispin_replica_statistics_match_scalar_sampler() {
    // 64 bit-packed replicas vs a scalar chain at the same temperature:
    // ⟨|m|⟩ agreement within a loose statistical tolerance.
    let beta = 0.55; // ordered side, fast equilibration
    let l = 16;
    let mut ms = tpu_ising_baseline::MultiSpinIsing::new(l, l, beta, 3);
    for _ in 0..400 {
        ms.sweep();
    }
    let mut acc = 0.0;
    let reps = 40;
    for _ in 0..reps {
        for _ in 0..5 {
            ms.sweep();
        }
        let mags = ms.magnetizations();
        acc += mags.iter().map(|m| m.abs()).sum::<f64>() / (64.0 * (l * l) as f64);
    }
    let multispin_m = acc / reps as f64;

    let init = random_plane::<f32>(77, l, l);
    let mut scalar = GpuStyleIsing::new(init, beta, Randomness::bulk(12));
    for _ in 0..400 {
        scalar.sweep();
    }
    let mut acc = 0.0;
    for _ in 0..200 {
        scalar.sweep();
        acc += scalar.magnetization_sum().abs() / (l * l) as f64;
    }
    let scalar_m = acc / 200.0;
    assert!(
        (multispin_m - scalar_m).abs() < 0.05,
        "multispin ⟨|m|⟩ = {multispin_m} vs scalar {scalar_m}"
    );
}
