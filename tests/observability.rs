//! Integration tests for the measured observability layer (`tpu-ising-obs`):
//! the Chrome trace exporter's exact output is pinned against a golden
//! file, histogram percentiles and the shared `TraceBreakdown` aggregation
//! are checked, and a real SPMD pod run must report a per-core measured
//! communication fraction.

use tpu_ising_core::distributed::{run_pod, PodConfig, PodRng};
use tpu_ising_device::mesh::Torus;
use tpu_ising_device::trace::Trace;
use tpu_ising_obs as obs;

/// A handcrafted snapshot with fixed timings — the exporter's output for
/// it must never drift (Perfetto and chrome://tracing both parse it).
fn sample_snapshot() -> obs::TraceSnapshot {
    obs::TraceSnapshot {
        tracks: vec!["core-0 (0,0)".to_string(), "core-1 (0,1)".to_string()],
        spans: vec![
            obs::SpanEvent {
                track: 0,
                name: "halo_exchange".into(),
                kind: None,
                start_us: 0.0,
                dur_us: 120.5,
                depth: 0,
            },
            obs::SpanEvent {
                track: 0,
                name: "collective_permute".into(),
                kind: Some(obs::SpanKind::CollectivePermute),
                start_us: 1.25,
                dur_us: 100.0,
                depth: 1,
            },
            obs::SpanEvent {
                track: 1,
                name: "neighbor_sums".into(),
                kind: Some(obs::SpanKind::Mxu),
                start_us: 130.0,
                dur_us: 512.75,
                depth: 0,
            },
            obs::SpanEvent {
                track: 1,
                name: "rng_uniforms".into(),
                kind: Some(obs::SpanKind::Vpu),
                start_us: 650.0,
                dur_us: 64.125,
                depth: 0,
            },
        ],
        dropped: 2,
    }
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/chrome_trace.json")
}

#[test]
fn chrome_trace_matches_golden_file() {
    let json = obs::chrome_trace_json(&sample_snapshot(), "tpu-ising test");
    let path = golden_path();
    if std::env::var_os("ISING_BLESS_GOLDEN").is_some() {
        std::fs::write(&path, &json).expect("bless golden");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    assert_eq!(
        json, golden,
        "chrome trace output drifted from tests/golden/chrome_trace.json \
         (rerun with ISING_BLESS_GOLDEN=1 to re-bless an intended change)"
    );
}

#[test]
fn chrome_trace_is_valid_trace_event_json() {
    let json = obs::chrome_trace_json(&sample_snapshot(), "tpu-ising test");
    // structural fingerprints Perfetto relies on
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.contains("\"displayTimeUnit\":\"ms\""));
    assert!(json.contains("\"process_name\""));
    assert_eq!(json.matches("\"thread_name\"").count(), 2);
    assert_eq!(json.matches("\"ph\":\"X\"").count(), 4);
    assert!(json.contains("\"dropped_spans\":\"2\""));
    // balanced braces/brackets (cheap well-formedness check, no serde_json
    // dependency: the exporter is hand-rolled precisely so its output does
    // not depend on a serializer)
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
}

#[test]
fn histogram_percentiles_are_nearest_rank() {
    let m = obs::Metrics::default();
    let h = m.histogram("sweep_seconds");
    for v in 1..=100 {
        h.observe(v as f64);
    }
    let s = h.summary();
    assert_eq!(s.count, 100);
    assert_eq!(s.min, 1.0);
    assert_eq!(s.max, 100.0);
    assert!((s.mean - 50.5).abs() < 1e-12);
    // The lock-free histogram is log-bucketed (32 sub-buckets per
    // octave), so nearest-rank percentiles land within the ~±1.1 %
    // bucket resolution of the exact order statistics.
    assert!((s.p50 - 51.0).abs() / 51.0 < 0.03, "p50 = {}", s.p50);
    assert!((s.p90 - 90.0).abs() / 90.0 < 0.03, "p90 = {}", s.p90);
    assert!((s.p99 - 99.0).abs() / 99.0 < 0.03, "p99 = {}", s.p99);
    assert!(!s.truncated);
}

#[test]
fn modeled_and_measured_views_share_the_breakdown_type() {
    // The modeled recorder aggregates into the same TraceBreakdown the
    // measured snapshot uses — one taxonomy for both Table-3 views.
    let t = Trace::new();
    t.record(obs::SpanKind::Mxu, "matmul", 0.6);
    t.record(obs::SpanKind::Vpu, "rng", 0.2);
    t.record(obs::SpanKind::Format, "reshape", 0.1);
    t.record(obs::SpanKind::CollectivePermute, "halo", 0.1);
    t.record(obs::SpanKind::Host, "infeed", 5.0);
    let b: obs::TraceBreakdown = t.breakdown();
    assert_eq!(b.step_seconds(), 1.0); // host excluded
    let (mxu, vpu, fmt, cp) = b.percentages();
    assert_eq!((mxu, vpu, fmt, cp), (60.0, 20.0, 10.0, 10.0));
    assert!((b.comm_fraction() - 0.1).abs() < 1e-12);
}

#[test]
fn pod_run_reports_measured_communication_fraction() {
    // The recorder is process-global; this is the only test in this binary
    // that touches it, but gate anyway so future additions stay safe.
    static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());

    obs::reset();
    obs::metrics().reset();
    obs::enable();
    let cfg = PodConfig {
        torus: Torus::new(2, 2),
        per_core_h: 16,
        per_core_w: 16,
        tile: 2,
        beta: 0.5,
        seed: 11,
        rng: PodRng::SiteKeyed,
        backend: tpu_ising_core::KernelBackend::Band,
    };
    let sweeps = 3;
    let _ = run_pod::<f32>(&cfg, sweeps).expect("pod run failed");
    obs::disable();

    let snap = obs::snapshot();
    assert_eq!(snap.dropped, 0);
    // one timeline track per SPMD core, named with id and coordinates
    assert_eq!(snap.tracks.len(), 4);
    for id in 0..4 {
        assert!(
            snap.tracks.iter().any(|t| t.starts_with(&format!("core-{id} "))),
            "missing track for core {id}: {:?}",
            snap.tracks
        );
    }
    // every core measured both communication and compute
    for (name, b) in snap.per_track_breakdown() {
        assert!(b.collective_permute > 0.0, "{name}: no cp time");
        assert!(b.mxu > 0.0, "{name}: no MXU time");
        let f = b.comm_fraction();
        assert!(f > 0.0 && f < 1.0, "{name}: comm fraction {f} out of (0,1)");
    }
    let f = snap.breakdown().comm_fraction();
    assert!(f > 0.0 && f < 1.0, "aggregate comm fraction {f}");
    // wrapper spans exist but are kind-less (no double counting)
    assert!(snap.spans.iter().any(|s| s.name == "halo_exchange" && s.kind.is_none()));
    assert!(snap.spans.iter().any(|s| s.name == "collective_permute"));

    // metrics side: halo traffic is deterministic for this geometry —
    // per color update each core ships two quarter-rows (n·t) and two
    // quarter-columns (m·t) of f32
    let m = obs::metrics().snapshot();
    let quarter = 16 / 2; // per-core quarter side
    let per_color_elems = 4 * quarter; // 2 rows + 2 cols
    let expected = (4 * sweeps * 2 * per_color_elems * std::mem::size_of::<f32>()) as u64;
    assert_eq!(m.counter("halo_bytes_total"), expected);
    assert_eq!(m.counter("collectives_total"), 4 * sweeps as u64 * 2 * 4);
    assert!(m.counter("rng_draws_total") > 0);
    assert!(m.counter("flip_proposals_total") >= m.counter("flips_accepted_total"));
}
