//! End-to-end software-stack test: the update step built as an HLO-lite
//! graph, pushed through the optimization passes, interpreted over
//! multiple sweeps, must evolve the lattice exactly like the direct
//! implementation — the Rust analogue of "the TF graph computes what the
//! paper's algorithm says".

use tpu_ising_core::hlo_frontend::build_compact_color_step;
use tpu_ising_core::{random_plane, Color, CompactIsing, Randomness, Sweeper};
use tpu_ising_hlo::graph::Dtype;
use tpu_ising_hlo::passes::{const_fold, dce, fusion_groups};
use tpu_ising_rng::PhiloxStream;
use tpu_ising_tensor::{Plane, Tensor4};

const L: usize = 16;
const TILE: usize = 4;
const BETA: f64 = 0.44;
const SEED: u64 = 909;

fn quarters(plane: &Plane<f32>) -> [Tensor4<f32>; 4] {
    let parts = plane.deinterleave();
    [
        parts[0].to_tiles(TILE),
        parts[1].to_tiles(TILE),
        parts[2].to_tiles(TILE),
        parts[3].to_tiles(TILE),
    ]
}

#[test]
fn graph_executed_chain_matches_direct_chain_over_many_sweeps() {
    let m = L / (2 * TILE);
    let init = random_plane::<f32>(3, L, L);

    // direct chain
    let mut direct = CompactIsing::from_plane(&init, TILE, BETA, Randomness::bulk(SEED));

    // graph chain: one graph per color, interpreted sweep after sweep with
    // the same Philox stream the direct chain consumes.
    let black = build_compact_color_step(m, m, TILE, BETA, Color::Black, Dtype::F32);
    let white = build_compact_color_step(m, m, TILE, BETA, Color::White, Dtype::F32);
    let mut stream = PhiloxStream::from_seed(SEED);
    let [mut q00, mut q01, mut q10, mut q11] = quarters(&init);

    for sweep in 0..6 {
        let out = tpu_ising_hlo::evaluate(
            &black.graph,
            &[q00.clone(), q01.clone(), q10.clone(), q11.clone()],
            &mut stream,
            &black.outputs,
        );
        q00 = out[0].clone();
        q11 = out[1].clone();
        let out = tpu_ising_hlo::evaluate(
            &white.graph,
            &[q00.clone(), q01.clone(), q10.clone(), q11.clone()],
            &mut stream,
            &white.outputs,
        );
        q01 = out[0].clone();
        q10 = out[1].clone();

        direct.sweep();
        let [d00, d01, d10, d11] = quarters(&direct.to_plane());
        assert_eq!(q00, d00, "σ̂00 sweep {sweep}");
        assert_eq!(q01, d01, "σ̂01 sweep {sweep}");
        assert_eq!(q10, d10, "σ̂10 sweep {sweep}");
        assert_eq!(q11, d11, "σ̂11 sweep {sweep}");
    }
}

#[test]
fn optimized_graph_computes_the_same_step() {
    let m = L / (2 * TILE);
    let built = build_compact_color_step(m, m, TILE, BETA, Color::Black, Dtype::F32);
    // const-fold then DCE, as the XLA pipeline would
    let (folded, roots) = const_fold(&built.graph, &built.outputs);
    let (optimized, roots) = dce(&folded, &roots);
    assert!(optimized.len() <= built.graph.len());

    let init = random_plane::<f32>(8, L, L);
    let [q00, q01, q10, q11] = quarters(&init);
    let mut s1 = PhiloxStream::from_seed(5);
    let mut s2 = PhiloxStream::from_seed(5);
    let a = tpu_ising_hlo::evaluate(
        &built.graph,
        &[q00.clone(), q01.clone(), q10.clone(), q11.clone()],
        &mut s1,
        &built.outputs,
    );
    let b = tpu_ising_hlo::evaluate(&optimized, &[q00, q01, q10, q11], &mut s2, &roots);
    assert_eq!(a, b);
}

#[test]
fn fusion_analysis_finds_the_acceptance_chain() {
    let built = build_compact_color_step(2, 2, TILE, BETA, Color::Black, Dtype::F32);
    let groups = fusion_groups(&built.graph, &built.outputs);
    // the acceptance pipeline mul → mul_scalar → exp must fuse
    let max_len = groups.iter().map(Vec::len).max().unwrap();
    assert!(max_len >= 3, "largest fusion group has {max_len} ops");
}

#[test]
fn cost_walker_and_device_model_agree_on_mxu_time() {
    // The graph's matmul MAC count equals the analytic model's count for
    // the same shape: 8 batched matmuls · t MACs per site per sweep. One
    // color update is half of that.
    use tpu_ising_device::{calib, cost as dcost};
    let (m, n, t) = (8usize, 4usize, 128usize);
    let built = build_compact_color_step(m, n, t, BETA, Color::Black, Dtype::Bf16);
    let trace = tpu_ising_hlo::cost::analyze(&built.graph, &built.outputs, 1);
    let mxu_graph = trace.breakdown().mxu;

    let cfg = dcost::StepConfig {
        per_core_h: 2 * m * t,
        per_core_w: 2 * n * t,
        dtype_bytes: 2,
        variant: dcost::Variant::Compact,
        mode: dcost::ExecutionMode::SingleCore,
    };
    let macs_model = dcost::step_counts(&cfg).macs;
    let mxu_model_half = macs_model / calib::MXU_SUSTAINED_MACS / 2.0;
    // single-core model applies an efficiency scaling to t_mxu; compare raw
    let rel = (mxu_graph - mxu_model_half).abs() / mxu_model_half;
    assert!(rel < 1e-9, "graph {mxu_graph} vs model/2 {mxu_model_half}");
}
