//! Golden-output tests for the HLO printer: the compact update step's text
//! dump is part of the debugging surface, so its shape is pinned here
//! (op mix and structure, not exact ids — passes may renumber).

use tpu_ising_core::hlo_frontend::{build_compact_color_step, build_conv_color_step};
use tpu_ising_core::Color;
use tpu_ising_hlo::printer::{print_graph, verify};
use tpu_ising_hlo::{Dtype, Op};

#[test]
fn compact_step_dump_structure() {
    let built = build_compact_color_step(2, 2, 4, 0.44, Color::Black, Dtype::Bf16);
    verify(&built.graph).unwrap();
    let text = print_graph(&built.graph, &built.outputs);

    // header and parameters
    assert!(text.starts_with("HloModule ising_step, entry_parameters=4\n"));
    for i in 0..4 {
        assert!(text.contains(&format!("parameter({i})")), "missing parameter {i}");
    }
    // op mix of Algorithm 2, one color: 4 dots, 2 rng draws, 2 exps,
    // 4 boundary compensations, 2 roots
    let count = |needle: &str| text.matches(needle).count();
    assert_eq!(count(" dot("), 4, "{text}");
    assert_eq!(count("rng-uniform"), 2);
    assert_eq!(count("exponential"), 2);
    assert_eq!(count("dynamic-update-add"), 4);
    assert_eq!(count("// ROOT"), 2);
    // the kernels are embedded constants with the right fingerprint:
    // bidiagonal 4×4 has 7 ones
    assert_eq!(count("constant(/*elements=16 sum=7*/)"), 2);
    // every tensor in this graph is bf16
    assert_eq!(count(" f32["), 0);
    assert!(count(" bf16[") > 10);
}

#[test]
fn conv_step_dump_structure() {
    let built = build_conv_color_step(2, 2, 4, 0.44, Color::White, Dtype::F32);
    verify(&built.graph).unwrap();
    let text = print_graph(&built.graph, &[built.output]);
    assert!(text.contains("convolution"));
    assert!(text.contains("kernel=plus3x3, padding=torus"));
    // conv variant: single lattice parameter, one rng, one conv
    assert!(text.starts_with("HloModule ising_step, entry_parameters=1\n"));
    assert_eq!(text.matches("rng-uniform").count(), 1);
    assert_eq!(text.matches("convolution").count(), 1);
    // the parity mask constant: half the 64 elements are ones
    assert!(text.contains("constant(/*elements=64 sum=32*/)"));
}

#[test]
fn optimized_dump_is_smaller_but_verifies() {
    let built = build_compact_color_step(2, 2, 4, 0.44, Color::White, Dtype::F32);
    let (optimized, roots) = tpu_ising_hlo::passes::optimize(&built.graph, &built.outputs);
    verify(&optimized).unwrap();
    assert!(optimized.len() <= built.graph.len());
    let text = print_graph(&optimized, &roots);
    assert_eq!(text.matches("// ROOT").count(), 2);
    // CSE must not merge the two independent rng draws
    assert_eq!(text.matches("rng-uniform").count(), 2);
}

#[test]
fn dump_round_trips_the_op_count() {
    let built = build_compact_color_step(3, 2, 2, 0.5, Color::Black, Dtype::F32);
    let text = print_graph(&built.graph, &built.outputs);
    // one line per op plus the header
    assert_eq!(text.lines().count(), built.graph.len() + 1);
    // no op kind is unprintable (no "{:?}" debug fallbacks leak)
    assert!(!text.contains("Op::"));
    // spot-check that ids referenced exist
    let n_ops = built.graph.len();
    for idx in 0..n_ops {
        let node = built.graph.node(tpu_ising_hlo::Id(idx));
        if let Op::Parameter { .. } = node.op {
            continue;
        }
    }
}
