//! Exact-distribution stationarity test.
//!
//! The paper proves (appendix) that the two-color checkerboard kernel has
//! the Boltzmann distribution as its stationary law. On a 4×4 torus the
//! state space (2¹⁶ = 65 536 configurations) is small enough to enumerate
//! exactly, so we can test the *distribution itself*, not just moments:
//! the empirical histograms of magnetization and energy from a long
//! checkerboard chain must match the exact Boltzmann marginals.

use tpu_ising_core::{random_plane, CompactIsing, Randomness, ReferenceIsing, Sweeper};
use tpu_ising_tensor::Plane;

const L: usize = 4;
const N: usize = L * L;
const BETA: f64 = 0.3;

/// Exact Boltzmann marginals of (M, E) on the 4×4 torus by enumeration.
fn exact_marginals() -> (std::collections::BTreeMap<i32, f64>, std::collections::BTreeMap<i32, f64>)
{
    let mut pm = std::collections::BTreeMap::new();
    let mut pe = std::collections::BTreeMap::new();
    let mut z = 0.0f64;
    for state in 0u32..(1 << N) {
        let spin = |r: usize, c: usize| -> i32 {
            if (state >> (r * L + c)) & 1 == 1 {
                1
            } else {
                -1
            }
        };
        let mut m = 0i32;
        let mut e = 0i32; // −Σ bonds; count each bond once (right + down)
        for r in 0..L {
            for c in 0..L {
                let s = spin(r, c);
                m += s;
                e -= s * spin(r, (c + 1) % L);
                e -= s * spin((r + 1) % L, c);
            }
        }
        let w = (-BETA * e as f64).exp();
        z += w;
        *pm.entry(m).or_insert(0.0) += w;
        *pe.entry(e).or_insert(0.0) += w;
    }
    for v in pm.values_mut() {
        *v /= z;
    }
    for v in pe.values_mut() {
        *v /= z;
    }
    (pm, pe)
}

fn total_variation(
    empirical: &std::collections::BTreeMap<i32, f64>,
    exact: &std::collections::BTreeMap<i32, f64>,
) -> f64 {
    let keys: std::collections::BTreeSet<i32> =
        empirical.keys().chain(exact.keys()).copied().collect();
    0.5 * keys
        .iter()
        .map(|k| {
            (empirical.get(k).copied().unwrap_or(0.0) - exact.get(k).copied().unwrap_or(0.0)).abs()
        })
        .sum::<f64>()
}

fn histogram_from_chain(
    mut step: impl FnMut() -> (f64, f64),
    samples: usize,
) -> (std::collections::BTreeMap<i32, f64>, std::collections::BTreeMap<i32, f64>) {
    let mut hm = std::collections::BTreeMap::new();
    let mut he = std::collections::BTreeMap::new();
    for _ in 0..samples {
        let (m, e) = step();
        *hm.entry(m.round() as i32).or_insert(0.0) += 1.0;
        *he.entry(e.round() as i32).or_insert(0.0) += 1.0;
    }
    for v in hm.values_mut() {
        *v /= samples as f64;
    }
    for v in he.values_mut() {
        *v /= samples as f64;
    }
    (hm, he)
}

#[test]
fn checkerboard_chain_samples_the_boltzmann_distribution() {
    let (pm, pe) = exact_marginals();
    let init: Plane<f32> = random_plane(1, L, L);
    let mut sim = CompactIsing::from_plane(&init, 2, BETA, Randomness::bulk(77));
    for _ in 0..1000 {
        sim.sweep(); // burn-in
    }
    let samples = 60_000;
    let (hm, he) = histogram_from_chain(
        || {
            sim.sweep();
            (sim.magnetization_sum(), sim.energy_sum())
        },
        samples,
    );
    let tv_m = total_variation(&hm, &pm);
    let tv_e = total_variation(&he, &pe);
    assert!(tv_m < 0.02, "TV(M) = {tv_m}");
    assert!(tv_e < 0.02, "TV(E) = {tv_e}");
}

#[test]
fn reference_chain_agrees_with_the_same_exact_marginals() {
    // The sequential oracle passes the identical test — if both pass, the
    // parallel kernel and the textbook kernel target the same law.
    let (pm, pe) = exact_marginals();
    let init: Plane<f32> = random_plane(2, L, L);
    let mut sim = ReferenceIsing::new(init, BETA, Randomness::bulk(78));
    for _ in 0..1000 {
        sim.sweep();
    }
    let (hm, he) = histogram_from_chain(
        || {
            sim.sweep();
            (sim.magnetization_sum(), sim.energy_sum())
        },
        60_000,
    );
    assert!(total_variation(&hm, &pm) < 0.02);
    assert!(total_variation(&he, &pe) < 0.02);
}

#[test]
fn exact_marginals_are_sane() {
    let (pm, pe) = exact_marginals();
    // symmetry: P(M) = P(−M)
    for (&m, &p) in &pm {
        assert!((p - pm[&(-m)]).abs() < 1e-12, "P(M={m}) asymmetric");
    }
    // probabilities sum to 1
    assert!((pm.values().sum::<f64>() - 1.0).abs() < 1e-9);
    assert!((pe.values().sum::<f64>() - 1.0).abs() < 1e-9);
    // ground states E = −2N exist with the right weight sign
    assert!(pe.contains_key(&(-(2 * N as i32))));
}
