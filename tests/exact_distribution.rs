//! Exact-distribution stationarity test.
//!
//! The paper proves (appendix) that the two-color checkerboard kernel has
//! the Boltzmann distribution as its stationary law. On a 4×4 torus the
//! state space (2¹⁶ = 65 536 configurations) is small enough to enumerate
//! exactly, so we can test the *distribution itself*, not just moments:
//! the empirical histograms of magnetization and energy from a long
//! checkerboard chain must match the exact Boltzmann marginals.

use tpu_ising_core::{
    random_plane, CompactIsing, MultiSpinIsing, Randomness, ReferenceIsing, Sweeper,
};
use tpu_ising_tensor::Plane;

const L: usize = 4;
const BETA: f64 = 0.3;

/// Exact Boltzmann marginals of (M, E) on the `l × l` torus by
/// enumeration, with E from the per-site right+down rule. On `l = 2` that
/// rule walks each lattice bond twice — which is exactly the doubled-bond
/// Hamiltonian a nearest-neighbor kernel simulates there, where every site
/// sees each of its two distinct neighbors twice.
fn exact_marginals(
    l: usize,
    beta: f64,
) -> (std::collections::BTreeMap<i32, f64>, std::collections::BTreeMap<i32, f64>) {
    let n = l * l;
    let mut pm = std::collections::BTreeMap::new();
    let mut pe = std::collections::BTreeMap::new();
    let mut z = 0.0f64;
    for state in 0u32..(1u32 << n) {
        let spin = |r: usize, c: usize| -> i32 {
            if (state >> (r * l + c)) & 1 == 1 {
                1
            } else {
                -1
            }
        };
        let mut m = 0i32;
        let mut e = 0i32; // −Σ bonds by the right+down rule
        for r in 0..l {
            for c in 0..l {
                let s = spin(r, c);
                m += s;
                e -= s * spin(r, (c + 1) % l);
                e -= s * spin((r + 1) % l, c);
            }
        }
        let w = (-beta * e as f64).exp();
        z += w;
        *pm.entry(m).or_insert(0.0) += w;
        *pe.entry(e).or_insert(0.0) += w;
    }
    for v in pm.values_mut() {
        *v /= z;
    }
    for v in pe.values_mut() {
        *v /= z;
    }
    (pm, pe)
}

fn total_variation(
    empirical: &std::collections::BTreeMap<i32, f64>,
    exact: &std::collections::BTreeMap<i32, f64>,
) -> f64 {
    let keys: std::collections::BTreeSet<i32> =
        empirical.keys().chain(exact.keys()).copied().collect();
    0.5 * keys
        .iter()
        .map(|k| {
            (empirical.get(k).copied().unwrap_or(0.0) - exact.get(k).copied().unwrap_or(0.0)).abs()
        })
        .sum::<f64>()
}

fn histogram_from_chain(
    mut step: impl FnMut() -> (f64, f64),
    samples: usize,
) -> (std::collections::BTreeMap<i32, f64>, std::collections::BTreeMap<i32, f64>) {
    let mut hm = std::collections::BTreeMap::new();
    let mut he = std::collections::BTreeMap::new();
    for _ in 0..samples {
        let (m, e) = step();
        *hm.entry(m.round() as i32).or_insert(0.0) += 1.0;
        *he.entry(e.round() as i32).or_insert(0.0) += 1.0;
    }
    for v in hm.values_mut() {
        *v /= samples as f64;
    }
    for v in he.values_mut() {
        *v /= samples as f64;
    }
    (hm, he)
}

#[test]
fn checkerboard_chain_samples_the_boltzmann_distribution() {
    let (pm, pe) = exact_marginals(L, BETA);
    let init: Plane<f32> = random_plane(1, L, L);
    let mut sim = CompactIsing::from_plane(&init, 2, BETA, Randomness::bulk(77));
    for _ in 0..1000 {
        sim.sweep(); // burn-in
    }
    let samples = 60_000;
    let (hm, he) = histogram_from_chain(
        || {
            sim.sweep();
            (sim.magnetization_sum(), sim.energy_sum())
        },
        samples,
    );
    let tv_m = total_variation(&hm, &pm);
    let tv_e = total_variation(&he, &pe);
    assert!(tv_m < 0.02, "TV(M) = {tv_m}");
    assert!(tv_e < 0.02, "TV(E) = {tv_e}");
}

#[test]
fn reference_chain_agrees_with_the_same_exact_marginals() {
    // The sequential oracle passes the identical test — if both pass, the
    // parallel kernel and the textbook kernel target the same law.
    let (pm, pe) = exact_marginals(L, BETA);
    let init: Plane<f32> = random_plane(2, L, L);
    let mut sim = ReferenceIsing::new(init, BETA, Randomness::bulk(78));
    for _ in 0..1000 {
        sim.sweep();
    }
    let (hm, he) = histogram_from_chain(
        || {
            sim.sweep();
            (sim.magnetization_sum(), sim.energy_sum())
        },
        60_000,
    );
    assert!(total_variation(&hm, &pm) < 0.02);
    assert!(total_variation(&he, &pe) < 0.02);
}

#[test]
fn multispin_replica_samples_the_exact_boltzmann_distribution() {
    // The bit-packed engine against the enumerated stationary law, on the
    // same 4×4 torus as the scalar kernels above. One replica is extracted
    // from the packed words; the other 63 chains ride along untouched in
    // the same u64s, so this also catches cross-replica bit leakage in the
    // packed update. (4×4 is the smallest honest torus: see
    // `multispin_2x2_stripe_orbit_is_closed` for why 2×2 cannot be used.)
    let (pm, pe) = exact_marginals(L, BETA);
    let mut sim = MultiSpinIsing::new(L, L, BETA, 2026);
    for _ in 0..1000 {
        sim.sweep(); // burn-in
    }
    for replica in [0usize, 63] {
        let (hm, he) = histogram_from_chain(
            || {
                sim.sweep();
                (sim.replica_magnetizations()[replica], sim.replica_energy(replica))
            },
            60_000,
        );
        let tv_m = total_variation(&hm, &pm);
        let tv_e = total_variation(&he, &pe);
        assert!(tv_m < 0.02, "replica {replica}: TV(M) = {tv_m}");
        assert!(tv_e < 0.02, "replica {replica}: TV(E) = {tv_e}");
    }
}

#[test]
fn multispin_2x2_stripe_orbit_is_closed() {
    // Documented pathology, pinned so nobody "fixes" the exact test down
    // to 2×2: a Metropolis kernel accepts ΔE = 0 proposals with
    // probability 1, and on the 2×2 torus every site of a stripe state
    // (one row +, one row −) sees a zero field — up/down and left/right
    // neighbors coincide and cancel. Both color phases then flip their
    // sites *deterministically*, so the four stripe states form a closed
    // zero-entropy orbit and the parallel chain is not ergodic on 2×2.
    // The Boltzmann comparison above therefore runs on 4×4, the smallest
    // torus where the checkerboard kernel mixes.
    let stripe = |sim: &MultiSpinIsing, k: usize| {
        let s = sim.replica_spins(k);
        (s[0] == s[1] && s[2] == s[3] && s[0] != s[2])
            || (s[0] == s[2] && s[1] == s[3] && s[0] != s[1])
    };
    // All-replica stripe start: rows of word 0 differ in every bit.
    let words = [!0u64, !0u64, 0u64, 0u64];
    let mut sim = MultiSpinIsing::from_words_at(&words, 2, 2, BETA, 7, 0, 0, 0);
    for sweep in 0..50 {
        for k in [0usize, 31, 63] {
            assert!(stripe(&sim, k), "replica {k} left the stripe orbit at sweep {sweep}");
        }
        sim.sweep();
    }
}

#[test]
fn exact_marginals_are_sane() {
    for l in [2usize, 4] {
        let (pm, pe) = exact_marginals(l, BETA);
        // symmetry: P(M) = P(−M)
        for (&m, &p) in &pm {
            assert!((p - pm[&(-m)]).abs() < 1e-12, "l={l}: P(M={m}) asymmetric");
        }
        // probabilities sum to 1
        assert!((pm.values().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((pe.values().sum::<f64>() - 1.0).abs() < 1e-9);
        // ground states E = −2N exist with the right weight sign
        let n = (l * l) as i32;
        assert!(pe.contains_key(&(-2 * n)), "l={l}");
    }
}
